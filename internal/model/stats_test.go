package model

import (
	"math"
	"strings"
	"testing"

	"locmps/internal/speedup"
)

func TestStatsDiamond(t *testing.T) {
	// s -> a, s -> b, a -> t, b -> t : depth 3, max width 2.
	tg := mustGraph(t,
		[]Task{linTask("s", 5), linTask("a", 10), linTask("b", 20), linTask("t", 5)},
		[]Edge{
			{From: 0, To: 1, Volume: 100}, {From: 0, To: 2, Volume: 100},
			{From: 1, To: 3, Volume: 50}, {From: 2, To: 3, Volume: 50},
		})
	st, err := Stats(tg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 4 || st.Edges != 4 {
		t.Errorf("tasks/edges = %d/%d", st.Tasks, st.Edges)
	}
	if st.Depth != 3 {
		t.Errorf("depth = %d, want 3", st.Depth)
	}
	if st.MaxWidth != 2 {
		t.Errorf("max width = %d, want 2", st.MaxWidth)
	}
	if st.SerialWork != 40 {
		t.Errorf("serial work = %v", st.SerialWork)
	}
	if st.CriticalPathWork != 30 { // s + b + t
		t.Errorf("cp work = %v", st.CriticalPathWork)
	}
	if math.Abs(st.TaskParallelism()-40.0/30) > 1e-12 {
		t.Errorf("task parallelism = %v", st.TaskParallelism())
	}
	if st.TotalVolume != 300 {
		t.Errorf("volume = %v", st.TotalVolume)
	}
	out := st.String()
	for _, want := range []string{"tasks:", "depth:", "critical path:", "data volume:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestStatsChainVsIndependent(t *testing.T) {
	chainTasks := []Task{linTask("a", 10), linTask("b", 10), linTask("c", 10)}
	chain := mustGraph(t, chainTasks, []Edge{{From: 0, To: 1}, {From: 1, To: 2}})
	indep := mustGraph(t, chainTasks, nil)
	sc, err := Stats(chain)
	if err != nil {
		t.Fatal(err)
	}
	si, err := Stats(indep)
	if err != nil {
		t.Fatal(err)
	}
	if sc.TaskParallelism() != 1 {
		t.Errorf("chain parallelism = %v", sc.TaskParallelism())
	}
	if si.TaskParallelism() != 3 {
		t.Errorf("independent parallelism = %v", si.TaskParallelism())
	}
	if sc.Depth != 3 || si.Depth != 1 {
		t.Errorf("depths = %d/%d", sc.Depth, si.Depth)
	}
}

func TestStatsMeanParallelism(t *testing.T) {
	d, err := speedup.NewDowney(10, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	tg := mustGraph(t, []Task{{Name: "x", Profile: d}}, nil)
	st, err := Stats(tg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.MeanParallelism-8) > 1e-9 {
		t.Errorf("mean parallelism = %v, want 8", st.MeanParallelism)
	}
}
