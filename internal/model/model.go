// Package model defines the macro data-flow graph of the paper's §II: a
// weighted DAG whose vertices are malleable parallel tasks (execution time a
// function of allocated processors, via internal/speedup profiles) and whose
// edges carry the data volumes to be redistributed between producer and
// consumer processor groups. It also defines the homogeneous-cluster system
// model (processor count, per-port bandwidth, overlap of computation and
// communication).
package model

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"locmps/internal/graph"
	"locmps/internal/speedup"
)

// Task is one data-parallel vertex of the application DAG.
type Task struct {
	// Name is a human-readable label ("T1", "P3-mult", ...). Names need
	// not be unique but unique names make Gantt charts and DOT dumps
	// legible.
	Name string
	// Profile gives the task's execution time as a function of the number
	// of processors allocated to it.
	Profile speedup.Profile
}

// Edge is a precedence constraint with an associated data volume (bytes)
// that must be redistributed from the producer's processor group to the
// consumer's.
type Edge struct {
	From, To int
	// Volume is the number of bytes communicated if the two tasks share no
	// processors. Zero-volume edges are pure precedence constraints.
	Volume float64
}

// TaskGraph couples the structural DAG with tasks and data volumes.
// Construct with NewTaskGraph or incrementally with Builder.
type TaskGraph struct {
	Tasks []Task
	dag   *graph.DAG
	// volume[{u,v}] is the data volume of edge u->v.
	volume map[[2]int]float64

	// Derived hot-path indices, built once by NewTaskGraph and immutable
	// afterwards: every graph edge gets a dense id in [0, M) assigned in
	// sorted (From, To) order, and the per-vertex adjacency carries
	// (neighbour, id, volume) triples so scheduler inner loops never hash
	// [2]int map keys.
	edges []Edge
	predE [][]AdjEdge // aligned with dag.Pred(v)
	succE [][]AdjEdge // aligned with dag.Succ(u)
	topo  []int       // cached deterministic topological order

	// tables caches the execution-time/Pbest/concurrency-ratio lookups
	// (see Tables); tablesMu serializes (re)builds.
	tables   atomic.Pointer[Tables]
	tablesMu sync.Mutex
}

// AdjEdge is one entry of the indexed adjacency: the neighbouring vertex
// (parent for PredEdges, child for SuccEdges), the dense edge id and the
// edge's data volume.
type AdjEdge struct {
	Other  int
	ID     int
	Volume float64
}

// NewTaskGraph builds and validates a task graph.
func NewTaskGraph(tasks []Task, edges []Edge) (*TaskGraph, error) {
	tg := &TaskGraph{
		Tasks:  tasks,
		dag:    graph.New(len(tasks)),
		volume: make(map[[2]int]float64, len(edges)),
	}
	for i, t := range tasks {
		if t.Profile == nil {
			return nil, fmt.Errorf("model: task %d (%q) has no execution profile", i, t.Name)
		}
		if et := t.Profile.Time(1); et < 0 || math.IsNaN(et) || math.IsInf(et, 0) {
			return nil, fmt.Errorf("model: task %d (%q) has invalid uniprocessor time %v", i, t.Name, et)
		}
	}
	for _, e := range edges {
		if e.Volume < 0 || math.IsNaN(e.Volume) || math.IsInf(e.Volume, 0) {
			return nil, fmt.Errorf("model: edge (%d,%d) has invalid volume %v", e.From, e.To, e.Volume)
		}
		if err := tg.dag.AddEdge(e.From, e.To); err != nil {
			return nil, fmt.Errorf("model: %w", err)
		}
		key := [2]int{e.From, e.To}
		if prev, dup := tg.volume[key]; dup && prev != e.Volume {
			return nil, fmt.Errorf("model: duplicate edge (%d,%d) with conflicting volumes %v and %v",
				e.From, e.To, prev, e.Volume)
		}
		tg.volume[key] = e.Volume
	}
	topo, err := tg.dag.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("model: task graph is not acyclic: %w", err)
	}
	tg.topo = topo
	tg.buildEdgeIndex()
	return tg, nil
}

// buildEdgeIndex assigns dense edge ids in sorted (From, To) order and
// materializes the id- and volume-carrying adjacency lists.
func (tg *TaskGraph) buildEdgeIndex() {
	raw := tg.dag.Edges() // sorted: deterministic id assignment
	tg.edges = make([]Edge, len(raw))
	id := make(map[[2]int]int, len(raw))
	for i, e := range raw {
		tg.edges[i] = Edge{From: e[0], To: e[1], Volume: tg.volume[e]}
		id[e] = i
	}
	n := tg.N()
	tg.predE = make([][]AdjEdge, n)
	tg.succE = make([][]AdjEdge, n)
	for v := 0; v < n; v++ {
		preds := tg.dag.Pred(v)
		if len(preds) > 0 {
			pe := make([]AdjEdge, len(preds))
			for i, u := range preds {
				eid := id[[2]int{u, v}]
				pe[i] = AdjEdge{Other: u, ID: eid, Volume: tg.edges[eid].Volume}
			}
			tg.predE[v] = pe
		}
		succs := tg.dag.Succ(v)
		if len(succs) > 0 {
			se := make([]AdjEdge, len(succs))
			for i, w := range succs {
				eid := id[[2]int{v, w}]
				se[i] = AdjEdge{Other: w, ID: eid, Volume: tg.edges[eid].Volume}
			}
			tg.succE[v] = se
		}
	}
}

// M reports the number of edges.
func (tg *TaskGraph) M() int { return len(tg.edges) }

// TopoOrder returns the cached deterministic topological order of the DAG.
// Callers must not modify the returned slice.
func (tg *TaskGraph) TopoOrder() []int { return tg.topo }

// PredEdges returns the incoming edges of v (parent, edge id, volume),
// aligned with DAG().Pred(v). Callers must not modify the slice.
func (tg *TaskGraph) PredEdges(v int) []AdjEdge { return tg.predE[v] }

// SuccEdges returns the outgoing edges of u (child, edge id, volume),
// aligned with DAG().Succ(u). Callers must not modify the slice.
func (tg *TaskGraph) SuccEdges(u int) []AdjEdge { return tg.succE[u] }

// EdgeID returns the dense id of edge u->v, or false if the edge is absent.
// Out-degrees of mixed-parallel DAGs are small, so a linear scan of the
// indexed adjacency beats hashing a [2]int key.
func (tg *TaskGraph) EdgeID(u, v int) (int, bool) {
	if u < 0 || u >= len(tg.succE) {
		return 0, false
	}
	for _, e := range tg.succE[u] {
		if e.Other == v {
			return e.ID, true
		}
	}
	return 0, false
}

// N reports the number of tasks.
func (tg *TaskGraph) N() int { return len(tg.Tasks) }

// DAG exposes the underlying structural DAG. Callers must not mutate it;
// use Clone on the DAG when pseudo-edges are needed.
func (tg *TaskGraph) DAG() *graph.DAG { return tg.dag }

// Volume returns the data volume on edge u->v (0 if the edge is absent).
func (tg *TaskGraph) Volume(u, v int) float64 { return tg.volume[[2]int{u, v}] }

// Edges returns all edges with volumes in deterministic (edge-id) order.
// The returned slice is a copy and may be modified by the caller.
func (tg *TaskGraph) Edges() []Edge {
	return append([]Edge(nil), tg.edges...)
}

// ExecTime returns et(t, p): the execution time of task t on p processors.
// Once a Tables cache has been built (any scheduler run does this), lookups
// within its range become array loads.
func (tg *TaskGraph) ExecTime(t, p int) float64 {
	if tb := tg.tables.Load(); tb != nil && p <= tb.maxP {
		return tb.ExecTime(t, p)
	}
	return tg.Tasks[t].Profile.Time(p)
}

// SerialWork returns the total uniprocessor work of the graph, a lower
// bound on P * makespan.
func (tg *TaskGraph) SerialWork() float64 {
	var sum float64
	for i := range tg.Tasks {
		sum += tg.ExecTime(i, 1)
	}
	return sum
}

// ConcurrencyRatio computes cr(t) of §III.C: the total uniprocessor work of
// the maximal concurrent set of t, relative to t's own uniprocessor work.
// For a zero-work task the ratio is +Inf when any concurrent work exists.
// The value is served from the Tables cache when one exists; the underlying
// sweep is O(V^2).
func (tg *TaskGraph) ConcurrencyRatio(t int) float64 {
	if tb := tg.tables.Load(); tb != nil {
		return tb.cr[t]
	}
	return tg.concurrencyRatioSlow(t)
}

func (tg *TaskGraph) concurrencyRatioSlow(t int) float64 {
	var work float64
	for _, u := range tg.dag.Concurrent(t) {
		work += tg.ExecTime(u, 1)
	}
	own := tg.ExecTime(t, 1)
	if own == 0 {
		if work == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return work / own
}

// Cluster is the homogeneous compute cluster of §II: P identical nodes with
// local storage, single-port NICs with the given point-to-point bandwidth,
// and an interconnect that either does or does not allow computation to
// overlap communication.
type Cluster struct {
	// P is the number of processors (one per node).
	P int
	// Bandwidth is the per-port link bandwidth in bytes per unit time.
	// The aggregate bandwidth between two groups is
	// min(|src|,|dst|) * Bandwidth, as in §III.B.
	Bandwidth float64
	// Overlap reports whether computation and communication overlap
	// (asynchronous transfers). When false, incoming redistribution
	// occupies the receiving processors.
	Overlap bool
}

// Validate checks the cluster parameters.
func (c Cluster) Validate() error {
	if c.P < 1 {
		return fmt.Errorf("model: cluster needs at least 1 processor, got %d", c.P)
	}
	if c.Bandwidth <= 0 || math.IsNaN(c.Bandwidth) || math.IsInf(c.Bandwidth, 0) {
		return fmt.Errorf("model: invalid bandwidth %v", c.Bandwidth)
	}
	return nil
}

// AggregateBandwidth returns bw(i,j) = min(npI, npJ) * Bandwidth, the
// paper's parallel-transfer bandwidth between two processor groups.
func (c Cluster) AggregateBandwidth(npI, npJ int) float64 {
	m := npI
	if npJ < m {
		m = npJ
	}
	if m < 1 {
		m = 1
	}
	return float64(m) * c.Bandwidth
}

// EdgeCost is the paper's allocation-time estimate of an edge's weight:
// wt(e) = D / (min(np_i, np_j) * bandwidth). It ignores placement; the
// locality-aware placement cost lives in internal/redist.
func (c Cluster) EdgeCost(volume float64, npI, npJ int) float64 {
	if volume == 0 {
		return 0
	}
	return volume / c.AggregateBandwidth(npI, npJ)
}

// CCR computes the communication-to-computation ratio of the graph for the
// all-uniprocessor allocation, the definition used in §IV.A.
func CCR(tg *TaskGraph, c Cluster) float64 {
	var comm, comp float64
	for _, e := range tg.Edges() {
		comm += c.EdgeCost(e.Volume, 1, 1)
	}
	for i := range tg.Tasks {
		comp += tg.ExecTime(i, 1)
	}
	if comp == 0 {
		return 0
	}
	return comm / comp
}
