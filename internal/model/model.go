// Package model defines the macro data-flow graph of the paper's §II: a
// weighted DAG whose vertices are malleable parallel tasks (execution time a
// function of allocated processors, via internal/speedup profiles) and whose
// edges carry the data volumes to be redistributed between producer and
// consumer processor groups. It also defines the homogeneous-cluster system
// model (processor count, per-port bandwidth, overlap of computation and
// communication).
package model

import (
	"fmt"
	"math"

	"locmps/internal/graph"
	"locmps/internal/speedup"
)

// Task is one data-parallel vertex of the application DAG.
type Task struct {
	// Name is a human-readable label ("T1", "P3-mult", ...). Names need
	// not be unique but unique names make Gantt charts and DOT dumps
	// legible.
	Name string
	// Profile gives the task's execution time as a function of the number
	// of processors allocated to it.
	Profile speedup.Profile
}

// Edge is a precedence constraint with an associated data volume (bytes)
// that must be redistributed from the producer's processor group to the
// consumer's.
type Edge struct {
	From, To int
	// Volume is the number of bytes communicated if the two tasks share no
	// processors. Zero-volume edges are pure precedence constraints.
	Volume float64
}

// TaskGraph couples the structural DAG with tasks and data volumes.
// Construct with NewTaskGraph or incrementally with Builder.
type TaskGraph struct {
	Tasks []Task
	dag   *graph.DAG
	// volume[{u,v}] is the data volume of edge u->v.
	volume map[[2]int]float64
}

// NewTaskGraph builds and validates a task graph.
func NewTaskGraph(tasks []Task, edges []Edge) (*TaskGraph, error) {
	tg := &TaskGraph{
		Tasks:  tasks,
		dag:    graph.New(len(tasks)),
		volume: make(map[[2]int]float64, len(edges)),
	}
	for i, t := range tasks {
		if t.Profile == nil {
			return nil, fmt.Errorf("model: task %d (%q) has no execution profile", i, t.Name)
		}
		if et := t.Profile.Time(1); et < 0 || math.IsNaN(et) || math.IsInf(et, 0) {
			return nil, fmt.Errorf("model: task %d (%q) has invalid uniprocessor time %v", i, t.Name, et)
		}
	}
	for _, e := range edges {
		if e.Volume < 0 || math.IsNaN(e.Volume) || math.IsInf(e.Volume, 0) {
			return nil, fmt.Errorf("model: edge (%d,%d) has invalid volume %v", e.From, e.To, e.Volume)
		}
		if err := tg.dag.AddEdge(e.From, e.To); err != nil {
			return nil, fmt.Errorf("model: %w", err)
		}
		key := [2]int{e.From, e.To}
		if prev, dup := tg.volume[key]; dup && prev != e.Volume {
			return nil, fmt.Errorf("model: duplicate edge (%d,%d) with conflicting volumes %v and %v",
				e.From, e.To, prev, e.Volume)
		}
		tg.volume[key] = e.Volume
	}
	if err := tg.dag.Validate(); err != nil {
		return nil, fmt.Errorf("model: task graph is not acyclic: %w", err)
	}
	return tg, nil
}

// N reports the number of tasks.
func (tg *TaskGraph) N() int { return len(tg.Tasks) }

// DAG exposes the underlying structural DAG. Callers must not mutate it;
// use Clone on the DAG when pseudo-edges are needed.
func (tg *TaskGraph) DAG() *graph.DAG { return tg.dag }

// Volume returns the data volume on edge u->v (0 if the edge is absent).
func (tg *TaskGraph) Volume(u, v int) float64 { return tg.volume[[2]int{u, v}] }

// Edges returns all edges with volumes in deterministic order.
func (tg *TaskGraph) Edges() []Edge {
	raw := tg.dag.Edges()
	es := make([]Edge, len(raw))
	for i, e := range raw {
		es[i] = Edge{From: e[0], To: e[1], Volume: tg.volume[e]}
	}
	return es
}

// ExecTime returns et(t, p): the execution time of task t on p processors.
func (tg *TaskGraph) ExecTime(t, p int) float64 { return tg.Tasks[t].Profile.Time(p) }

// SerialWork returns the total uniprocessor work of the graph, a lower
// bound on P * makespan.
func (tg *TaskGraph) SerialWork() float64 {
	var sum float64
	for i := range tg.Tasks {
		sum += tg.ExecTime(i, 1)
	}
	return sum
}

// ConcurrencyRatio computes cr(t) of §III.C: the total uniprocessor work of
// the maximal concurrent set of t, relative to t's own uniprocessor work.
// For a zero-work task the ratio is +Inf when any concurrent work exists.
func (tg *TaskGraph) ConcurrencyRatio(t int) float64 {
	var work float64
	for _, u := range tg.dag.Concurrent(t) {
		work += tg.ExecTime(u, 1)
	}
	own := tg.ExecTime(t, 1)
	if own == 0 {
		if work == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return work / own
}

// Cluster is the homogeneous compute cluster of §II: P identical nodes with
// local storage, single-port NICs with the given point-to-point bandwidth,
// and an interconnect that either does or does not allow computation to
// overlap communication.
type Cluster struct {
	// P is the number of processors (one per node).
	P int
	// Bandwidth is the per-port link bandwidth in bytes per unit time.
	// The aggregate bandwidth between two groups is
	// min(|src|,|dst|) * Bandwidth, as in §III.B.
	Bandwidth float64
	// Overlap reports whether computation and communication overlap
	// (asynchronous transfers). When false, incoming redistribution
	// occupies the receiving processors.
	Overlap bool
}

// Validate checks the cluster parameters.
func (c Cluster) Validate() error {
	if c.P < 1 {
		return fmt.Errorf("model: cluster needs at least 1 processor, got %d", c.P)
	}
	if c.Bandwidth <= 0 || math.IsNaN(c.Bandwidth) || math.IsInf(c.Bandwidth, 0) {
		return fmt.Errorf("model: invalid bandwidth %v", c.Bandwidth)
	}
	return nil
}

// AggregateBandwidth returns bw(i,j) = min(npI, npJ) * Bandwidth, the
// paper's parallel-transfer bandwidth between two processor groups.
func (c Cluster) AggregateBandwidth(npI, npJ int) float64 {
	m := npI
	if npJ < m {
		m = npJ
	}
	if m < 1 {
		m = 1
	}
	return float64(m) * c.Bandwidth
}

// EdgeCost is the paper's allocation-time estimate of an edge's weight:
// wt(e) = D / (min(np_i, np_j) * bandwidth). It ignores placement; the
// locality-aware placement cost lives in internal/redist.
func (c Cluster) EdgeCost(volume float64, npI, npJ int) float64 {
	if volume == 0 {
		return 0
	}
	return volume / c.AggregateBandwidth(npI, npJ)
}

// CCR computes the communication-to-computation ratio of the graph for the
// all-uniprocessor allocation, the definition used in §IV.A.
func CCR(tg *TaskGraph, c Cluster) float64 {
	var comm, comp float64
	for _, e := range tg.Edges() {
		comm += c.EdgeCost(e.Volume, 1, 1)
	}
	for i := range tg.Tasks {
		comp += tg.ExecTime(i, 1)
	}
	if comp == 0 {
		return 0
	}
	return comm / comp
}
