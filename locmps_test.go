package locmps_test

import (
	"bytes"
	"math"
	"testing"

	"locmps"
)

// buildPipeline constructs a small mixed-parallel pipeline through the
// public API only.
func buildPipeline(t *testing.T) *locmps.TaskGraph {
	t.Helper()
	stage, err := locmps.NewDowney(30, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	filter, err := locmps.NewDowney(12, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := locmps.NewTaskGraph(
		[]locmps.Task{
			{Name: "decode", Profile: filter},
			{Name: "fft", Profile: stage},
			{Name: "conv", Profile: stage},
			{Name: "merge", Profile: filter},
		},
		[]locmps.Edge{
			{From: 0, To: 1, Volume: 4e6},
			{From: 0, To: 2, Volume: 4e6},
			{From: 1, To: 3, Volume: 4e6},
			{From: 2, To: 3, Volume: 4e6},
		})
	if err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestPublicAPIEndToEnd(t *testing.T) {
	tg := buildPipeline(t)
	c := locmps.Cluster{P: 8, Bandwidth: 250e6, Overlap: true}

	var best, worst float64
	for _, alg := range locmps.AllSchedulers() {
		s, err := alg.Schedule(tg, c)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if err := s.Validate(tg); err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if best == 0 || s.Makespan < best {
			best = s.Makespan
		}
		if s.Makespan > worst {
			worst = s.Makespan
		}
	}
	// LoC-MPS must achieve the best makespan among the six on this graph.
	loc, err := locmps.NewLoCMPS().Schedule(tg, c)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Makespan > best+1e-9 {
		t.Errorf("LoC-MPS %v, best across schedulers %v", loc.Makespan, best)
	}
	if worst <= best {
		t.Log("all schedulers tied; graph too easy for a spread check")
	}
}

func TestPublicAPISimulation(t *testing.T) {
	tg := buildPipeline(t)
	c := locmps.Cluster{P: 4, Bandwidth: 250e6, Overlap: true}
	s, res, err := locmps.Run(locmps.NewLoCMPS(), tg, c, locmps.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Errorf("simulated makespan %v", res.Makespan)
	}
	// The simulator replays the same placements; without noise it stays
	// within a small factor of the plan (port contention can add delay).
	if res.Makespan < s.Makespan/2 || res.Makespan > s.Makespan*2 {
		t.Errorf("simulated %v vs planned %v diverge wildly", res.Makespan, s.Makespan)
	}
}

func TestPublicAPIJSONRoundTrip(t *testing.T) {
	tg := buildPipeline(t)
	var buf bytes.Buffer
	if err := tg.WriteJSON(&buf, 8); err != nil {
		t.Fatal(err)
	}
	back, err := locmps.ReadTaskGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != tg.N() {
		t.Errorf("N = %d, want %d", back.N(), tg.N())
	}
	for p := 1; p <= 8; p++ {
		if math.Abs(back.ExecTime(1, p)-tg.ExecTime(1, p)) > 1e-12 {
			t.Errorf("profile diverged at p=%d", p)
		}
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	if _, err := locmps.Strassen(1024); err != nil {
		t.Error(err)
	}
	if _, err := locmps.CCSDT1(locmps.DefaultCCSDParams()); err != nil {
		t.Error(err)
	}
	p := locmps.DefaultSynthParams()
	p.Tasks = 12
	g, err := locmps.Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Errorf("N = %d", g.N())
	}
	suite, err := locmps.SyntheticSuite(p, 4, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 4 {
		t.Errorf("suite len = %d", len(suite))
	}
	if _, err := locmps.SchedulerByName("CPR"); err != nil {
		t.Error(err)
	}
}
