package locmps_test

// facade_test exercises the remaining public API surface end to end:
// format parsers, workload topologies, job scheduling, statistics and
// profile fitting.

import (
	"math"
	"strings"
	"testing"

	"locmps"
)

func TestFacadeFormats(t *testing.T) {
	stg := `
2
0 0 0
1 5 1 0
2 7 1 1
3 0 1 2
`
	tg, err := locmps.ReadSTG(strings.NewReader(stg), locmps.DefaultMalleability())
	if err != nil {
		t.Fatal(err)
	}
	if tg.N() != 4 {
		t.Errorf("N = %d", tg.N())
	}

	tgff := `
@TASK_GRAPH 0 {
	TASK a TYPE 0
	TASK b TYPE 1
	ARC e0 FROM a TO b TYPE 0
}
`
	graphs, err := locmps.ParseTGFF(strings.NewReader(tgff))
	if err != nil {
		t.Fatal(err)
	}
	built, err := locmps.BuildFromTGFF(graphs[0], locmps.TGFFCosts{
		TaskTime:    map[int]float64{0: 10, 1: 20},
		DefaultTime: 5, DefaultArc: 1,
	}, locmps.DefaultMalleability())
	if err != nil {
		t.Fatal(err)
	}
	if built.N() != 2 || built.ExecTime(1, 1) != 20 {
		t.Errorf("TGFF build wrong: N=%d t=%v", built.N(), built.ExecTime(1, 1))
	}
}

func TestFacadeTopologiesAndApps(t *testing.T) {
	p := locmps.DefaultSynthParams()
	p.Tasks = 8
	if g, err := locmps.SyntheticChain(p); err != nil || g.N() != 8 {
		t.Errorf("chain: %v", err)
	}
	if g, err := locmps.SyntheticForkJoin(p); err != nil || g.N() != 8 {
		t.Errorf("fork-join: %v", err)
	}
	if _, err := locmps.SyntheticOutTree(p, 2); err != nil {
		t.Errorf("out-tree: %v", err)
	}
	if _, err := locmps.SyntheticInTree(p, 2); err != nil {
		t.Errorf("in-tree: %v", err)
	}
	if _, err := locmps.SyntheticSeriesParallel(p); err != nil {
		t.Errorf("series-parallel: %v", err)
	}
	if _, err := locmps.Montage(locmps.DefaultMontageParams()); err != nil {
		t.Errorf("montage: %v", err)
	}
	if _, err := locmps.StrassenRecursive(512, 2); err != nil {
		t.Errorf("recursive strassen: %v", err)
	}
}

// TestFacadeParallelSchedulerBitIdentical: the workers-pinned constructor
// must expose its search metrics and reproduce the default scheduler's
// schedule bit for bit — the pools and the pruning bound never change what
// is scheduled.
func TestFacadeParallelSchedulerBitIdentical(t *testing.T) {
	p := locmps.DefaultSynthParams()
	p.Tasks = 20
	p.Seed = 7
	g, err := locmps.Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	c := locmps.Cluster{P: 16, Bandwidth: 12.5e6, Overlap: true}
	base, err := locmps.NewLoCMPS().Schedule(g, c)
	if err != nil {
		t.Fatal(err)
	}
	alg := locmps.NewLoCMPSParallel(4)
	s, err := alg.Schedule(g, c)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != base.Makespan {
		t.Errorf("parallel makespan %v != serial %v", s.Makespan, base.Makespan)
	}
	for i := range s.Placements {
		if s.Placements[i].Start != base.Placements[i].Start {
			t.Errorf("task %d starts differ: %v vs %v", i, s.Placements[i].Start, base.Placements[i].Start)
		}
	}
	if _, ok := locmps.SearchMetrics(alg); !ok {
		t.Error("parallel scheduler does not expose search metrics")
	}
}

func TestFacadeStatsAndFit(t *testing.T) {
	p := locmps.DefaultSynthParams()
	p.Tasks = 10
	g, err := locmps.Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := locmps.GraphStatistics(g)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 10 || st.Width < 1 || st.Depth < 1 {
		t.Errorf("stats = %+v", st)
	}
	truth := locmps.Downey{T1: 50, A: 10, Sigma: 1}
	times := make([]float64, 16)
	for i := range times {
		times[i] = truth.Time(i + 1)
	}
	fit, err := locmps.FitDowney(times)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Time(8)-truth.Time(8)) > 0.05*truth.Time(8) {
		t.Errorf("fit diverges: %v vs %v", fit.Time(8), truth.Time(8))
	}
}

func TestFacadeSWFAndDual(t *testing.T) {
	swf := "1 0 0 100 4 -1 -1 4 150 -1 1 1 1 1 1 1 -1 -1\n" +
		"2 10 0 50 2 -1 -1 2 60 -1 1 1 1 1 1 1 -1 -1\n"
	jobs, err := locmps.ReadSWF(strings.NewReader(swf), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	res, err := locmps.SimulateJobs(jobs, 8, locmps.StrategyEASY)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 100 {
		t.Errorf("makespan = %v", res.Makespan)
	}

	tg, err := locmps.NewTaskGraph([]locmps.Task{
		{Name: "a", Profile: locmps.Linear{T1: 40}},
		{Name: "b", Profile: locmps.Linear{T1: 80}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := locmps.ScheduleDual(tg, locmps.Cluster{P: 4, Bandwidth: 1e9, Overlap: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Makespan-30) > 1e-6 {
		t.Errorf("dual makespan = %v, want 30", s.Makespan)
	}
}
