package locmps

import (
	"locmps/internal/core"
	"locmps/internal/exp"
	"locmps/internal/online"
)

// On-line rescheduling (the paper's §VI future-work direction): execute a
// task graph on the simulated cluster under runtime noise and node
// slowdowns, re-planning the remaining tasks when execution drifts from the
// plan.
type (
	// Slowdown is a persistent node-speed change at a point in time.
	Slowdown = online.Slowdown
	// ReschedulePolicy controls when the runtime re-plans.
	ReschedulePolicy = online.Policy
	// OnlineOptions configure an on-line run.
	OnlineOptions = online.Options
	// OnlineTrace reports an on-line run (makespan, reschedules,
	// migrations, per-task times).
	OnlineTrace = online.Trace
)

// ExecuteOnline runs the graph under the given initial scheduler, noise,
// slowdown events and rescheduling policy.
func ExecuteOnline(alg Scheduler, tg *TaskGraph, c Cluster, opt OnlineOptions) (OnlineTrace, error) {
	return online.Execute(alg, tg, c, opt)
}

// ScheduleHeterogeneous runs the full LoC-MPS loop on a cluster whose
// nodes differ in speed: nodeFactor[p] is node p's execution-time
// multiplier (1 = nominal, 2 = half speed). Placement prefers faster
// nodes; task durations follow the slowest member of each group.
func ScheduleHeterogeneous(tg *TaskGraph, c Cluster, nodeFactor []float64) (*Schedule, error) {
	return core.New().ScheduleWithPreset(tg, c, core.Preset{NodeFactor: nodeFactor})
}

// Ablation sweeps for the design choices of §III (look-ahead depth,
// best-candidate window, locality/backfill knockouts, block size).
type AblationOptions = exp.AblationOptions

// DefaultAblationOptions returns a communication-heavy mid-size setup.
func DefaultAblationOptions() AblationOptions { return exp.DefaultAblationOptions() }

// AblateLookAhead sweeps the bounded look-ahead depth.
func AblateLookAhead(o AblationOptions, depths []int) (perf, times Figure, err error) {
	return exp.AblateLookAhead(o, depths)
}

// AblateCandidateWindow sweeps the §III.C top-fraction candidate window.
func AblateCandidateWindow(o AblationOptions, fractions []float64) (perf, times Figure, err error) {
	return exp.AblateCandidateWindow(o, fractions)
}

// AblateMechanisms compares full LoC-MPS against locality, backfill and
// communication-awareness knockouts.
func AblateMechanisms(o AblationOptions) (Figure, error) { return exp.AblateMechanisms(o) }

// AblateBlockSize sweeps the block-cyclic block size of the redistribution
// model.
func AblateBlockSize(o AblationOptions, blockBytes []float64) (perf, times Figure, err error) {
	return exp.AblateBlockSize(o, blockBytes)
}
