module locmps

go 1.22
