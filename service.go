package locmps

import "locmps/internal/serve"

// Service is a concurrent scheduling service over the LoC-MPS kernel and
// the baselines: a sharded content-addressed result cache over canonical
// request fingerprints, coalescing of identical in-flight requests, and
// per-shard warm workers that keep scheduler scratch state alive across
// runs. Construct with NewService; Schedule is safe for concurrent use.
type Service = serve.Service

// ServiceConfig sizes a Service (shards, workers per shard, queue depth,
// cache entries). The zero value selects sensible defaults.
type ServiceConfig = serve.Config

// ServiceRequest is one unit of work: schedule Graph onto Cluster under
// Options.
type ServiceRequest = serve.Request

// ServiceOptions select and parameterize the algorithm for a request; the
// zero value means LoC-MPS with default knobs.
type ServiceOptions = serve.Options

// ServiceStats is a point-in-time snapshot of a Service's counters.
type ServiceStats = serve.Stats

// ServiceKey is the canonical content address of a ServiceRequest.
type ServiceKey = serve.Key

// ErrOverloaded is returned by Service.Schedule when the request's shard
// queue is full; ErrClosed after Close; ErrAnytimeUnsupported by
// Service.ScheduleAnytime for baselines and Dual requests, which have no
// single iterative search to truncate.
var (
	ErrOverloaded         = serve.ErrOverloaded
	ErrClosed             = serve.ErrClosed
	ErrAnytimeUnsupported = serve.ErrAnytimeUnsupported
)

// NewService starts a scheduling service. Call Close to stop its workers.
func NewService(cfg ServiceConfig) *Service { return serve.New(cfg) }
