package locmps

import (
	"locmps/internal/serve"
	"locmps/internal/serve/httpserve"
)

// Service is a concurrent scheduling service over the LoC-MPS kernel and
// the baselines: a sharded content-addressed result cache over canonical
// request fingerprints, coalescing of identical in-flight requests, and
// per-shard warm workers that keep scheduler scratch state alive across
// runs. Construct with NewService; Schedule is safe for concurrent use.
type Service = serve.Service

// ServiceConfig sizes a Service (shards, workers per shard, queue depth,
// cache entries). The zero value selects sensible defaults.
type ServiceConfig = serve.Config

// ServiceRequest is one unit of work: schedule Graph onto Cluster under
// Options.
type ServiceRequest = serve.Request

// ServiceOptions select and parameterize the algorithm for a request; the
// zero value means LoC-MPS with default knobs.
type ServiceOptions = serve.Options

// ServiceStats is a point-in-time snapshot of a Service's counters.
type ServiceStats = serve.Stats

// ServiceKey is the canonical content address of a ServiceRequest.
type ServiceKey = serve.Key

// ErrOverloaded is returned by Service.Schedule when the request's shard
// queue is full; ErrClosed after Close; ErrAnytimeUnsupported by
// Service.ScheduleAnytime for baselines and Dual requests, which have no
// single iterative search to truncate.
var (
	ErrOverloaded         = serve.ErrOverloaded
	ErrClosed             = serve.ErrClosed
	ErrAnytimeUnsupported = serve.ErrAnytimeUnsupported
)

// NewService starts a scheduling service. Call Close to stop its workers.
func NewService(cfg ServiceConfig) *Service { return serve.New(cfg) }

// DiskCache is a disk-backed second-level result cache: one atomic file
// per fingerprint, size-bounded LRU eviction, corruption-tolerant loads.
// Set it as ServiceConfig.L2 so warm results survive process restarts.
type DiskCache = serve.DiskCache

// OpenDiskCache opens (creating if needed) a DiskCache rooted at dir,
// bounded to maxBytes of entries (<= 0 selects the default bound).
func OpenDiskCache(dir string, maxBytes int64) (*DiskCache, error) {
	return serve.OpenDiskCache(dir, maxBytes)
}

// HTTPServer exposes a Service over HTTP/JSON (POST /v1/schedule,
// GET /v1/stats, GET /healthz) with admission control and load shedding.
type HTTPServer = httpserve.Server

// HTTPServerConfig tunes an HTTPServer; the zero value selects defaults.
type HTTPServerConfig = httpserve.ServerConfig

// NewHTTPServer wraps svc in an HTTP node. The caller keeps ownership of
// svc and serves node.Handler() however it likes.
func NewHTTPServer(svc *Service, cfg HTTPServerConfig) *HTTPServer {
	return httpserve.NewServer(svc, cfg)
}

// Client talks to a fleet of HTTPServer nodes: consistent-hash routing on
// request fingerprints, hedged retries against a second replica, failover,
// and connection reuse.
type Client = httpserve.Client

// ClientConfig configures a Client; Nodes is required.
type ClientConfig = httpserve.ClientConfig

// ClientStats exposes a Client's hedging and failover counters.
type ClientStats = httpserve.ClientStats

// NodeStats is one node's GET /v1/stats payload.
type NodeStats = httpserve.NodeStats

// NewClient builds a fleet client. Close it to release pooled connections.
func NewClient(cfg ClientConfig) (*Client, error) { return httpserve.NewClient(cfg) }
