package locmps_test

// Regression tests for the root facades over internal/online and
// internal/jobsched: a small golden workload pins their output, so facade
// wiring (type aliases, option plumbing) cannot silently drift from the
// internal packages.

import (
	"math"
	"strings"
	"testing"

	"locmps"
)

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }

func TestFacadeExecuteOnlineGolden(t *testing.T) {
	p := locmps.DefaultSynthParams()
	p.Tasks = 10
	p.CCR = 0.5
	p.Seed = 11
	tg, err := locmps.Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	c := locmps.Cluster{P: 4, Bandwidth: 12.5e6, Overlap: false}
	tr, err := locmps.ExecuteOnline(locmps.NewLoCMPS(), tg, c, locmps.OnlineOptions{
		Slowdowns: []locmps.Slowdown{{Time: 10, Node: 0, Factor: 2}},
		Policy:    locmps.ReschedulePolicy{DriftThreshold: 0.05, MaxReschedules: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Golden values for this seed: the halved node 0 stretches the run from
	// the planned ~108.97 to ~224.78 with exactly one reschedule that
	// migrates one task.
	if !approx(tr.PlannedMakespan, 108.96610303871897) {
		t.Errorf("planned makespan = %v", tr.PlannedMakespan)
	}
	if !approx(tr.Makespan, 224.776642966014) {
		t.Errorf("makespan = %v", tr.Makespan)
	}
	if tr.Reschedules != 1 || tr.Migrated != 1 {
		t.Errorf("reschedules = %d, migrated = %d, want 1 and 1", tr.Reschedules, tr.Migrated)
	}
	if len(tr.Start) != tg.N() || len(tr.Finish) != tg.N() {
		t.Errorf("per-task times have %d/%d entries", len(tr.Start), len(tr.Finish))
	}
	for i := range tr.Start {
		if tr.Finish[i] < tr.Start[i] || tr.Finish[i] > tr.Makespan+1e-9 {
			t.Errorf("task %d ran [%v,%v] outside [0,%v]", i, tr.Start[i], tr.Finish[i], tr.Makespan)
		}
	}
}

func TestFacadeSimulateJobsGolden(t *testing.T) {
	jobs := []locmps.RigidJob{
		{Arrival: 0, Procs: 3, Estimate: 10, Runtime: 10},
		{Arrival: 0, Procs: 2, Estimate: 8, Runtime: 6},
		{Arrival: 1, Procs: 1, Estimate: 4, Runtime: 4},
		{Arrival: 2, Procs: 4, Estimate: 6, Runtime: 5},
		{Arrival: 3, Procs: 1, Estimate: 2, Runtime: 2},
	}
	golden := []struct {
		strat      locmps.BackfillStrategy
		makespan   float64
		avgWait    float64
		backfilled int
		start      []float64
	}{
		// FCFS: job 1 blocks behind job 0's three processors.
		{locmps.StrategyFCFS, 23, 10.2, 0, []float64{0, 10, 10, 16, 21}},
		// EASY and conservative backfill jobs 2 and 4 into the head's
		// shadow; on this workload they agree.
		{locmps.StrategyEASY, 21, 5.2, 2, []float64{0, 10, 1, 16, 5}},
		{locmps.StrategyConservative, 21, 5.2, 2, []float64{0, 10, 1, 16, 5}},
	}
	for _, g := range golden {
		res, err := locmps.SimulateJobs(jobs, 4, g.strat)
		if err != nil {
			t.Fatalf("%v: %v", g.strat, err)
		}
		if res.Makespan != g.makespan || res.AvgWait != g.avgWait || res.Backfilled != g.backfilled {
			t.Errorf("%v: makespan=%v wait=%v backfilled=%d, want %v/%v/%d",
				g.strat, res.Makespan, res.AvgWait, res.Backfilled, g.makespan, g.avgWait, g.backfilled)
		}
		for i, want := range g.start {
			if res.Start[i] != want {
				t.Errorf("%v: job %d started %v, want %v", g.strat, i, res.Start[i], want)
			}
		}
	}
}

func TestFacadeReadSWFGolden(t *testing.T) {
	swf := `; SWF test trace
1 0 -1 10 3 -1 -1 3 12 -1 1 1 1 1 1 -1 -1 -1
2 5 -1 4 1 -1 -1 1 6 -1 1 1 1 1 1 -1 -1 -1
`
	jobs, err := locmps.ReadSWF(strings.NewReader(swf), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []locmps.RigidJob{
		{Arrival: 0, Procs: 3, Estimate: 12, Runtime: 10},
		{Arrival: 5, Procs: 1, Estimate: 6, Runtime: 4},
	}
	if len(jobs) != len(want) {
		t.Fatalf("parsed %d jobs, want %d", len(jobs), len(want))
	}
	for i := range want {
		if jobs[i] != want[i] {
			t.Errorf("job %d = %+v, want %+v", i, jobs[i], want[i])
		}
	}
	// The parsed trace must run through the facade simulator cleanly.
	res, err := locmps.SimulateJobs(jobs, 4, locmps.StrategyEASY)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 10 {
		t.Errorf("makespan = %v, want 10 (job 1 backfills beside job 0)", res.Makespan)
	}
}
