// Package locmps is the public API of this module: a reproduction of
// "Locality Conscious Processor Allocation and Scheduling for Mixed
// Parallel Applications" (Vydyanathan et al., IEEE Cluster 2006).
//
// It schedules mixed-parallel applications — directed acyclic graphs of
// malleable data-parallel tasks with inter-task data volumes — onto
// homogeneous clusters, choosing for every task a processor count, a
// processor set and a start time so that the makespan is minimized.
//
// The package re-exports the building blocks from internal packages:
//
//   - task graphs and cluster models (NewTaskGraph, Cluster),
//   - speedup profiles (Downey, Amdahl, Linear, NewTable),
//   - the LoC-MPS scheduler and every baseline from the paper's
//     evaluation (NewLoCMPS, NewICASLB, NewCPR, ... or ByName),
//   - the discrete-event cluster simulator (Execute, Run),
//   - workload generators (Synthetic, Strassen, CCSDT1),
//   - experiment drivers regenerating each figure of the paper
//     (Fig4 ... Fig11).
//
// See examples/quickstart for a complete end-to-end program.
package locmps

import (
	"context"
	"io"

	"locmps/internal/core"
	"locmps/internal/model"
	"locmps/internal/sched"
	"locmps/internal/schedule"
	"locmps/internal/sim"
	"locmps/internal/speedup"
)

// Core model types.
type (
	// Task is one malleable vertex of the application DAG.
	Task = model.Task
	// Edge is a precedence constraint carrying a data volume in bytes.
	Edge = model.Edge
	// TaskGraph is the weighted application DAG.
	TaskGraph = model.TaskGraph
	// Cluster is the homogeneous machine model: P nodes, single-port NICs
	// with a given bandwidth, with or without computation/communication
	// overlap.
	Cluster = model.Cluster
	// ProfileSpec is the serializable description of a speedup profile.
	ProfileSpec = model.ProfileSpec
)

// Speedup profiles.
type (
	// Profile maps processor count to execution time.
	Profile = speedup.Profile
	// Downey is Downey's speedup model (parameters A, sigma).
	Downey = speedup.Downey
	// Amdahl is the fixed-serial-fraction model.
	Amdahl = speedup.Amdahl
	// Linear is the perfectly scalable profile.
	Linear = speedup.Linear
	// Table is a measured (profiled) execution-time table.
	Table = speedup.Table
)

// Schedules.
type (
	// Schedule is the output of a scheduler: placements, makespan,
	// charged communication and scheduling wall-clock time.
	Schedule = schedule.Schedule
	// Placement is one task's processor set and time window.
	Placement = schedule.Placement
	// Scheduler is implemented by every algorithm in this module.
	Scheduler = schedule.Scheduler
	// Engine is the full algorithm interface: Scheduler plus cooperative
	// cancellation (ScheduleContext) and capability flags. Every algorithm
	// in this module implements it.
	Engine = schedule.Engine
	// EngineCapabilities are an Engine's static capability flags
	// (anytime, incremental, concurrent-safe).
	EngineCapabilities = schedule.Capabilities
)

// Simulator types.
type (
	// SimOptions configure the discrete-event execution (noise, seed).
	SimOptions = sim.Options
	// SimResult reports a simulated execution.
	SimResult = sim.Result
)

// NewTaskGraph builds and validates a task graph.
func NewTaskGraph(tasks []Task, edges []Edge) (*TaskGraph, error) {
	return model.NewTaskGraph(tasks, edges)
}

// ReadTaskGraph parses the JSON task-graph format (see WriteJSON on
// TaskGraph for the schema).
func ReadTaskGraph(r io.Reader) (*TaskGraph, error) { return model.ReadJSON(r) }

// NewDowney validates and returns a Downey profile.
func NewDowney(t1, a, sigma float64) (Downey, error) { return speedup.NewDowney(t1, a, sigma) }

// NewAmdahl validates and returns an Amdahl profile.
func NewAmdahl(t1, f float64) (Amdahl, error) { return speedup.NewAmdahl(t1, f) }

// NewTable validates and returns a table profile (times[0] is the
// uniprocessor time).
func NewTable(times []float64) (Table, error) { return speedup.NewTable(times) }

// RunMetrics is a per-run snapshot of the LoC-MPS search layer's work:
// look-ahead iterations, placement-engine invocations, allocation-vector
// memo hits/misses and speculative-evaluation accounting.
type RunMetrics = model.RunMetrics

// SearchMetrics returns the most recent Schedule call's RunMetrics for
// schedulers that record them (LoC-MPS and its variants); ok is false for
// the baselines, which have no iterative search layer.
func SearchMetrics(s Scheduler) (m RunMetrics, ok bool) {
	if rec, ok := s.(interface{ LastRunMetrics() model.RunMetrics }); ok {
		return rec.LastRunMetrics(), true
	}
	return RunMetrics{}, false
}

// NewLoCMPS returns the paper's algorithm: locality conscious mixed
// parallel allocation and scheduling with backfilling and bounded
// look-ahead.
func NewLoCMPS() Scheduler { return core.New() }

// NewLoCMPSParallel returns the paper's algorithm with both intra-search
// parallelism levels pinned to the given worker count: the §III.C candidate
// window evaluates concurrently on up to workers goroutines, and main-path
// placement runs fan their candidate-slot scans out over a probe pool of
// the same size. Schedules are bit-identical to NewLoCMPS — only where the
// work executes changes, never what is scheduled. workers = 0 sizes both
// pools to GOMAXPROCS (the NewLoCMPS default); 1 forces fully serial
// execution.
func NewLoCMPSParallel(workers int) Scheduler { return core.NewParallel(workers) }

// NewLoCMPSReference returns LoC-MPS with every cross-run acceleration
// switched off: no allocation-vector memo, no incremental placement resume
// and no speculative candidate evaluation. It computes bit-identical
// schedules to NewLoCMPS by the direct (re-run everything) route, so it
// serves as the correctness oracle in differential tests and as the
// measurement baseline when cmd/benchjson re-baselines a case.
func NewLoCMPSReference() Scheduler { return core.NewReference() }

// NewLoCMPSNoBackfill returns the cheaper frontier-only variant of Fig 6.
func NewLoCMPSNoBackfill() Scheduler { return core.NewNoBackfill() }

// NewICASLB returns the authors' earlier communication-blind algorithm.
func NewICASLB() Scheduler { return core.NewICASLB() }

// NewCPR returns the Critical Path Reduction baseline.
func NewCPR() Scheduler { return sched.CPR{} }

// NewCPA returns the Critical Path and Allocation baseline.
func NewCPA() Scheduler { return sched.CPA{} }

// NewTaskParallel returns the pure task-parallel baseline (one processor
// per task).
func NewTaskParallel() Scheduler { return sched.Task{} }

// NewDataParallel returns the pure data-parallel baseline (every task on
// all processors, sequentially).
func NewDataParallel() Scheduler { return sched.Data{} }

// NewOptimal returns the exhaustive branch-and-bound scheduler for tiny
// instances (up to ~8 tasks) — ground truth for optimality-gap studies.
func NewOptimal() Scheduler { return sched.Optimal{} }

// NewMHEFT returns the M-HEFT-style extra baseline: one-shot list
// scheduling with per-task greedy width selection.
func NewMHEFT() Scheduler { return sched.MHEFT{} }

// ScheduleDual runs LoC-MPS twice — from the pure task-parallel start and
// from the saturated data-parallel allocation — and returns the better
// schedule (never worse than NewLoCMPS, at about twice the cost).
func ScheduleDual(tg *TaskGraph, c Cluster) (*Schedule, error) {
	return core.New().ScheduleDual(tg, c)
}

// Budget bounds an anytime LoC-MPS search: MaxIterations caps the outer
// repeat-until rounds (deterministic — same budget, bit-identical
// schedule), Deadline stops the search at the first check point past a
// wall-clock instant. The zero value runs to natural termination.
type Budget = core.Budget

// AnytimeResult is a budget-bounded search outcome: the best complete
// schedule committed within the budget, the instance's certified makespan
// lower bound, the makespan/bound quality ratio and whether the budget
// truncated the search.
type AnytimeResult = core.AnytimeResult

// ScheduleAnytime runs the anytime LoC-MPS search under a budget,
// returning the best-so-far schedule with its quality bound. Budget
// exhaustion is reported via AnytimeResult.Truncated, never as an error;
// ctx cancellation aborts with ctx.Err(). A zero budget is exactly
// NewLoCMPS().Schedule plus the quality bound.
func ScheduleAnytime(ctx context.Context, tg *TaskGraph, c Cluster, b Budget) (*AnytimeResult, error) {
	return core.New().ScheduleBudget(ctx, tg, c, b)
}

// MakespanLowerBound is the audit oracle's instance lower bound
// max(CP@inf-P, area/P): no schedule of tg on c can have a smaller
// makespan, so makespan divided by this bound certifies schedule quality.
func MakespanLowerBound(tg *TaskGraph, c Cluster) (float64, error) {
	return core.LowerBound(tg, c)
}

// AllSchedulers returns the six algorithms of the paper's evaluation.
func AllSchedulers() []Scheduler {
	engines := sched.All()
	out := make([]Scheduler, len(engines))
	for i, e := range engines {
		out[i] = e
	}
	return out
}

// AllEngines returns the six algorithms of the paper's evaluation under
// the full Engine interface.
func AllEngines() []Engine { return sched.All() }

// EngineNames returns every registered engine name, paper figure order
// first, then the extensions (M-HEFT, LoC-MPS-NoBF, OPT).
func EngineNames() []string { return sched.Names() }

// SchedulerByName resolves "LoC-MPS", "LoC-MPS-NoBF", "iCASLB", "CPR",
// "CPA", "TASK" or "DATA".
func SchedulerByName(name string) (Scheduler, error) { return sched.ByName(name) }

// EngineByName is SchedulerByName under the full Engine interface.
func EngineByName(name string) (Engine, error) { return sched.ByName(name) }

// Execute runs a computed schedule through the discrete-event cluster
// simulator with exact single-port transfer accounting.
func Execute(tg *TaskGraph, s *Schedule, opt SimOptions) (SimResult, error) {
	return sim.Execute(tg, s, opt)
}

// Run schedules and immediately simulates, returning both artifacts.
func Run(alg Scheduler, tg *TaskGraph, c Cluster, opt SimOptions) (*Schedule, SimResult, error) {
	return sim.Run(alg, tg, c, opt)
}
