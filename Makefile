# Tier-1+ verification for the locmps module. `make check` is the gate every
# change must pass: build, vet, the full test suite under the race detector
# (this exercises ScheduleDual and the experiment worker pool concurrently),
# and a short benchmark smoke of the scheduler hot path.

GO ?= go

.PHONY: check build vet test race race-core bench-smoke bench-gate bench-json bench-save bench-diff profile golden stress fuzz-smoke loadgen loadgen-smoke serve-smoke portfolio-smoke stream-smoke streamgen

check: build vet race bench-smoke loadgen-smoke portfolio-smoke serve-smoke stream-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The concurrency-heavy packages (barrier window evaluation, in-run probe
# pool, shared cross-request state, anytime cancellation) re-run fresh
# under the race detector at GOMAXPROCS 1 and 4: serial (pools degenerate)
# and wide (fan-outs real), with the golden determinism fixture checked at
# both widths — parallelism must be invisible in the output.
race-core:
	for gmp in 1 4; do \
		echo "=== GOMAXPROCS=$$gmp ==="; \
		GOMAXPROCS=$$gmp $(GO) test -run TestGoldenDeterminism -count=1 . && \
		GOMAXPROCS=$$gmp $(GO) test -race -count=1 ./internal/core/... ./internal/serve/... || exit 1; \
	done

# A single iteration of each mid-scale scheduler benchmark: catches gross
# regressions and asserts the hot path still runs end to end.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkLoCMPS(30Tasks16Procs|50Tasks64Procs)' -benchtime 1x -benchmem .

# Refresh the "current" snapshot in BENCH_locmps.json (the baseline inside
# is preserved).
bench-json:
	$(GO) run ./cmd/benchjson

# Regression gate against the committed BENCH_locmps.json: re-measures every
# case and fails when ns/op exceeds the committed current snapshot by more
# than the threshold (default 1.6x, generous for shared CI runners) or when
# any makespan changed — schedules are deterministic, so a changed makespan
# is a behavior change, never noise. Writes no file.
bench-gate:
	$(GO) run ./cmd/benchjson -gate

# Refresh the "current" snapshot in BENCH_serve.json: service-level
# throughput and latency from the closed-loop load generator (baseline
# inside is preserved; delete the file to re-baseline).
loadgen:
	$(GO) run ./cmd/loadgen

# Reduced load-generator pass for CI: runs the cold/warm/hit-speedup phases
# against the scheduling service, checks the invariants, writes no file.
loadgen-smoke:
	$(GO) run ./cmd/loadgen -smoke

# Portfolio smoke, race-enabled: one cold race of the full engine set
# through the service, then warm deadline repeats that must hit the winner
# cache and stay within the routing-overhead bound. -race shakes the
# concurrent racers themselves.
portfolio-smoke:
	$(GO) run -race ./cmd/loadgen -portfolio-smoke

# End-to-end smoke of the networked service: boots a two-node schedserved
# fleet (race-enabled) with disk L2 caches, drives it over HTTP with
# loadgen -addr, then restarts the fleet on the same ports and L2
# directories and requires the replay to hit disk.
serve-smoke:
	scripts/serve_smoke.sh

# Streaming smoke, race-enabled: a short Poisson stream with failures and
# a shrink, plus an SWF trace replay, through the open-loop rolling-horizon
# rescheduler. Asserts the replay-rate floor, audit-clean end states,
# bit-identical incremental-vs-scratch plans and t=0 batch equivalence;
# writes no file.
stream-smoke:
	$(GO) run -race ./cmd/streamgen -smoke

# Refresh the "current" snapshot in BENCH_stream.json: replay-rate and
# reschedule-latency SLOs of the streaming scheduler (baseline inside is
# preserved; delete the file to re-baseline).
streamgen:
	$(GO) run ./cmd/streamgen

# Repeated runs of the mid-scale benchmarks in benchstat's input format:
# `make bench-save OUT=old.txt`, change code, `make bench-save OUT=new.txt`,
# then `make bench-diff OLD=old.txt NEW=new.txt` (benchstat itself is not
# vendored here).
OUT ?= bench.txt
bench-save:
	$(GO) test -run '^$$' -bench 'BenchmarkLoCMPS(30Tasks16Procs|50Tasks64Procs)' -benchtime 1x -benchmem -count 6 . | tee $(OUT)

# Compare two bench-save outputs with benchstat (install it once with
# `go install golang.org/x/perf/cmd/benchstat@latest`). OLD defaults to the
# last bench-save output; NEW is measured fresh when the file is absent.
OLD ?= bench.txt
NEW ?= bench.new.txt
bench-diff:
	@command -v benchstat >/dev/null 2>&1 || { \
		echo "bench-diff: benchstat not found; install it with:"; \
		echo "  go install golang.org/x/perf/cmd/benchstat@latest"; \
		exit 1; }
	@test -f $(OLD) || { echo "bench-diff: $(OLD) missing; record it first with 'make bench-save OUT=$(OLD)'"; exit 1; }
	@test -f $(NEW) || $(MAKE) bench-save OUT=$(NEW)
	benchstat $(OLD) $(NEW)

# CPU and heap profiles of the mid-scale scheduler benchmarks plus the
# 100-task cold case that drives the probe-pool/pruning work (DESIGN.md
# §13), for `go tool pprof profiles/locmps.test profiles/cpu.pprof`.
# PROFILE_BENCH narrows the capture to one case, e.g.
# `make profile PROFILE_BENCH='BenchmarkLoCMPS100Tasks128Procs$$'`.
PROFILE_BENCH ?= BenchmarkLoCMPS(30Tasks16Procs|50Tasks64Procs|100Tasks128Procs)$$
profile:
	mkdir -p profiles
	$(GO) test -run '^$$' -bench '$(PROFILE_BENCH)' -benchtime 2x \
		-cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof -o profiles/locmps.test .

# Re-check the golden determinism fixture on its own.
golden:
	$(GO) test -run TestGoldenDeterminism .

# Differential stress sweep: N seeded workloads through every scheduler,
# the internal/audit oracle and the metamorphic invariants. Failures are
# minimized and dumped to testdata/ as replayable JSON
# (`go run ./cmd/stress -case testdata/<dump>.json`).
N ?= 500
SEED ?= 1
stress:
	$(GO) run ./cmd/stress -n $(N) -seed $(SEED)

# Short fuzz passes over each fuzz target: the graph/format parsers and
# the audit oracle. ~30s total.
FUZZTIME ?= 7s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadJSON -fuzztime $(FUZZTIME) ./internal/model
	$(GO) test -run '^$$' -fuzz FuzzReadSTG -fuzztime $(FUZZTIME) ./internal/formats
	$(GO) test -run '^$$' -fuzz FuzzParseTGFF -fuzztime $(FUZZTIME) ./internal/formats
	$(GO) test -run '^$$' -fuzz FuzzAudit -fuzztime $(FUZZTIME) ./internal/audit
