# Tier-1+ verification for the locmps module. `make check` is the gate every
# change must pass: build, vet, the full test suite under the race detector
# (this exercises ScheduleDual and the experiment worker pool concurrently),
# and a short benchmark smoke of the scheduler hot path.

GO ?= go

.PHONY: check build vet test race bench-smoke bench-json golden

check: build vet race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A single iteration of each mid-scale scheduler benchmark: catches gross
# regressions and asserts the hot path still runs end to end.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkLoCMPS(30Tasks16Procs|50Tasks64Procs)' -benchtime 1x -benchmem .

# Refresh the "current" snapshot in BENCH_locmps.json (the baseline inside
# is preserved).
bench-json:
	$(GO) run ./cmd/benchjson

# Re-check the golden determinism fixture on its own.
golden:
	$(GO) test -run TestGoldenDeterminism .
