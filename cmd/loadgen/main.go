// Command loadgen drives the scheduling service with a closed-loop load
// generator and records service-level throughput and latency in
// BENCH_serve.json so the serving layer's trajectory is tracked across PRs
// alongside the scheduler-kernel numbers in BENCH_locmps.json.
//
// Three phases per worker count (1, 2, 4):
//
//   - cold: a stream of distinct synthetic graphs, every request a cold
//     scheduler run on a warm worker (schedules/sec, p50/p99);
//   - warm: the same stream replayed, every request a content-addressed
//     cache hit (schedules/sec, p50/p99);
//   - hit speedup: one 50-task/64-processor instance measured cold, then
//     served from the cache — the ratio is the headline win of the
//     result cache.
//
// The file keeps a "baseline" (written once, preserved on reruns) and a
// "current" snapshot plus derived speedups, the same convention as
// BENCH_locmps.json; delete the file to re-baseline. The host's CPU count
// is recorded too: cold throughput is compute-bound, so scaling with worker
// count is only observable when the host has at least that many CPUs.
//
// Three network cases ride along, each against self-hosted HTTP nodes: warm
// throughput over the wire vs in-process on the same mid-scale stream, the
// hedged-retry p99 win against an artificially slow home node, and the
// disk-L2 restart hit (cold search vs disk hit after a node restart).
//
// With -addr, loadgen instead drives already-running schedserved nodes over
// HTTP (smoke-style, no file written) and reports the nodes' admission
// counters; -expect-l2 asserts a minimum number of disk hits, for restart
// smoke tests.
//
// Usage:
//
//	go run ./cmd/loadgen                # update BENCH_serve.json in place
//	go run ./cmd/loadgen -o out.json
//	go run ./cmd/loadgen -smoke         # reduced load, sanity checks, no file
//	go run ./cmd/loadgen -workers 2     # drive a single worker count
//	go run ./cmd/loadgen -deadline 5ms  # wall-clock budget for the anytime case
//	go run ./cmd/loadgen -addr http://127.0.0.1:8080,http://127.0.0.1:8081
//	go run ./cmd/loadgen -addr http://127.0.0.1:8080 -expect-l2 1
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"locmps"
)

// Result is one load-generation snapshot. Throughput cases fill the phase
// fields; the hit-speedup case fills the latency pair and the ratio.
type Result struct {
	Workers  int `json:"workers,omitempty"`
	Distinct int `json:"distinct_requests,omitempty"`
	// SearchWorkers is the per-cold-run intra-search parallelism the
	// service resolved for this case (GOMAXPROCS divided across the
	// request-level workers, minimum 1 — the no-oversubscription policy).
	// Cold throughput figures are only comparable at equal values.
	SearchWorkers int `json:"search_workers,omitempty"`
	// Cold phase: every request is a cold scheduler run.
	ColdSchedPerSec float64 `json:"cold_schedules_per_sec,omitempty"`
	ColdP50Ns       float64 `json:"cold_p50_ns,omitempty"`
	ColdP99Ns       float64 `json:"cold_p99_ns,omitempty"`
	// Warm phase: the same stream replayed out of the result cache.
	WarmSchedPerSec float64 `json:"warm_schedules_per_sec,omitempty"`
	WarmP50Ns       float64 `json:"warm_p50_ns,omitempty"`
	WarmP99Ns       float64 `json:"warm_p99_ns,omitempty"`
	// Hit-speedup case: one instance cold vs served from the cache.
	ColdNs      float64 `json:"cold_ns,omitempty"`
	WarmHitNs   float64 `json:"warm_hit_p50_ns,omitempty"`
	HitSpeedupX float64 `json:"hit_speedup_x,omitempty"`
	// Deadline case: one instance scheduled under a wall-clock anytime
	// budget against the same instance's full run. QualityRatio is the
	// anytime schedule's makespan over the instance's certified lower
	// bound (>= 1 always); Truncated says whether the budget actually cut
	// the search short on this host.
	DeadlineNs      float64 `json:"deadline_ns,omitempty"`
	AnytimeNs       float64 `json:"anytime_ns,omitempty"`
	AnytimeMakespan float64 `json:"anytime_makespan,omitempty"`
	FullMakespan    float64 `json:"full_makespan,omitempty"`
	QualityRatio    float64 `json:"quality_ratio,omitempty"`
	Truncated       bool    `json:"truncated,omitempty"`
	// Network case: the same cold/warm phases driven over HTTP against
	// self-hosted nodes, and the warm network throughput as a fraction of
	// the in-process warm throughput on the same request set.
	NetColdSchedPerSec    float64 `json:"net_cold_schedules_per_sec,omitempty"`
	NetColdP50Ns          float64 `json:"net_cold_p50_ns,omitempty"`
	NetColdP99Ns          float64 `json:"net_cold_p99_ns,omitempty"`
	NetWarmSchedPerSec    float64 `json:"net_warm_schedules_per_sec,omitempty"`
	NetWarmP50Ns          float64 `json:"net_warm_p50_ns,omitempty"`
	NetWarmP99Ns          float64 `json:"net_warm_p99_ns,omitempty"`
	InprocWarmSchedPerSec float64 `json:"inproc_warm_schedules_per_sec,omitempty"`
	NetVsInprocWarmX      float64 `json:"net_vs_inproc_warm_x,omitempty"`
	// Hedging case: warm p99 against a slow home node, with hedged retries
	// off vs on; HedgeWinX = unhedged/hedged.
	UnhedgedP99Ns float64 `json:"unhedged_p99_ns,omitempty"`
	HedgedP99Ns   float64 `json:"hedged_p99_ns,omitempty"`
	HedgeWinX     float64 `json:"hedge_win_x,omitempty"`
	Hedges        uint64  `json:"hedges,omitempty"`
	// Admission and disruption counters observed during the case, summed
	// across nodes: Rejected (queue-full), Cancelled (client went away),
	// Shed (HTTP admission control), and the shed fraction of all HTTP
	// schedule attempts.
	Rejected     uint64  `json:"rejected,omitempty"`
	Cancelled    uint64  `json:"cancelled,omitempty"`
	Shed         uint64  `json:"shed,omitempty"`
	ShedFraction float64 `json:"shed_fraction,omitempty"`
	// L2Hits counts second-level (disk) cache hits during the case.
	L2Hits uint64 `json:"l2_hits,omitempty"`
	// Portfolio case: one instance raced cold across the engine portfolio,
	// then warm deadline-bounded repeats routed via the winner cache to the
	// winning engine alone, against the same engine called directly.
	// WarmOverheadX = winner-routed p50 / direct p50 — the price of the
	// routing layer, gated at <= 1.10 by benchjson -gate.
	PortfolioEngines  int     `json:"portfolio_engines,omitempty"`
	RaceNs            float64 `json:"race_ns,omitempty"`
	PortfolioWinner   string  `json:"portfolio_winner,omitempty"`
	WinnerRoutedP50Ns float64 `json:"winner_routed_p50_ns,omitempty"`
	DirectP50Ns       float64 `json:"direct_p50_ns,omitempty"`
	WarmOverheadX     float64 `json:"warm_overhead_x,omitempty"`
	WinnerHits        uint64  `json:"winner_hits,omitempty"`
}

// File is the on-disk layout of BENCH_serve.json.
type File struct {
	Note string `json:"note,omitempty"`
	// CPUs is the host's CPU count when "current" was recorded. Cold
	// throughput cannot scale past it regardless of worker count.
	CPUs     int                `json:"cpus"`
	Baseline map[string]Result  `json:"baseline"`
	Current  map[string]Result  `json:"current"`
	SpeedupX map[string]Speedup `json:"speedup_vs_baseline"`
}

// Speedup compares current against baseline: cold throughput as
// current/baseline (higher is better), warm hit latency as
// baseline/current (lower is better).
type Speedup struct {
	ColdThroughput float64 `json:"cold_throughput,omitempty"`
	WarmHitNs      float64 `json:"warm_hit_ns,omitempty"`
}

type config struct {
	workerCounts []int
	distinct     int
	tasks, procs int
	warmRounds   int
	hitTasks     int
	hitProcs     int
	hitReps      int
	deadline     time.Duration
	// dlReps repeats the deadline-budget measurement; the repetition with
	// the best (lowest) quality ratio is recorded. portReps repeats the
	// portfolio warm-path A/B measurement.
	dlReps   int
	portReps int
	// Network cases: distinct requests and warm rounds driven over HTTP,
	// the injected slow-node delay for the hedging case, and its reps.
	netDistinct int
	netRounds   int
	hedgeDelay  time.Duration
	hedgeReps   int
}

func fullConfig() config {
	return config{
		workerCounts: []int{1, 2, 4},
		distinct:     24, tasks: 24, procs: 16,
		warmRounds: 3,
		hitTasks:   50, hitProcs: 64, hitReps: 32,
		deadline: 5 * time.Millisecond,
		dlReps:   5, portReps: 8,
		netDistinct: 6, netRounds: 6,
		hedgeDelay: 30 * time.Millisecond, hedgeReps: 12,
	}
}

func smokeConfig() config {
	return config{
		workerCounts: []int{1, 2},
		distinct:     6, tasks: 12, procs: 8,
		warmRounds: 2,
		hitTasks:   20, hitProcs: 16, hitReps: 8,
		deadline: 2 * time.Millisecond,
		dlReps:   3, portReps: 3,
		netDistinct: 3, netRounds: 2,
		hedgeDelay: 15 * time.Millisecond, hedgeReps: 6,
	}
}

func main() {
	path := flag.String("o", "BENCH_serve.json", "output file (baseline inside is preserved)")
	smoke := flag.Bool("smoke", false, "reduced load for CI: run the phases, check invariants, write no file")
	workers := flag.Int("workers", 0, "drive only this worker count instead of the default ladder")
	deadline := flag.Duration("deadline", 0, "wall-clock budget for the anytime deadline case (0 keeps the config default)")
	addr := flag.String("addr", "", "comma-separated node URLs: drive running schedserved nodes over HTTP instead of self-hosting (writes no file)")
	expectL2 := flag.Int("expect-l2", 0, "with -addr: require at least this many L2 (disk) hits across the nodes after the run")
	portSmoke := flag.Bool("portfolio-smoke", false, "run only the portfolio case at smoke scale, assert the winner-cache invariants, write no file")
	flag.Parse()
	if *portSmoke {
		if err := portfolioSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}
	if *addr != "" {
		if err := remote(*addr, *smoke, *expectL2); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*path, *smoke, *workers, *deadline); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(path string, smoke bool, workers int, deadline time.Duration) error {
	cfg := fullConfig()
	if smoke {
		cfg = smokeConfig()
	}
	if workers > 0 {
		cfg.workerCounts = []int{workers}
	}
	if deadline > 0 {
		cfg.deadline = deadline
	}
	cpus := runtime.NumCPU()
	if procs, max := runtime.GOMAXPROCS(0), cfg.workerCounts[len(cfg.workerCounts)-1]; max > procs {
		fmt.Fprintf(os.Stderr,
			"loadgen: warning: %d workers exceed GOMAXPROCS=%d; they will time-slice, not parallelize — cold throughput and latency will not reflect %d-way hardware\n",
			max, procs, max)
	}

	current := map[string]Result{}
	for _, w := range cfg.workerCounts {
		r, err := throughputCase(w, cfg)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("LoadgenWorkers%d", w)
		current[name] = r
		fmt.Printf("%-38s cold %8.2f sched/s (p50 %v, p99 %v)  warm %10.0f sched/s (p50 %v, p99 %v)\n",
			name, r.ColdSchedPerSec, time.Duration(r.ColdP50Ns), time.Duration(r.ColdP99Ns),
			r.WarmSchedPerSec, time.Duration(r.WarmP50Ns), time.Duration(r.WarmP99Ns))
	}
	hit, err := hitSpeedupCase(cfg)
	if err != nil {
		return err
	}
	hitName := fmt.Sprintf("LoadgenHitSpeedup%dTasks%dProcs", cfg.hitTasks, cfg.hitProcs)
	current[hitName] = hit
	fmt.Printf("%-38s cold %v, cache hit %v: %.0fx\n",
		hitName, time.Duration(hit.ColdNs), time.Duration(hit.WarmHitNs), hit.HitSpeedupX)

	dl, err := deadlineCase(cfg)
	if err != nil {
		return err
	}
	dlName := "LoadgenDeadline"
	current[dlName] = dl
	fmt.Printf("%-38s budget %v: anytime %v (makespan %.3g, quality %.3fx bound, truncated=%v) vs full %.3g\n",
		dlName, time.Duration(dl.DeadlineNs), time.Duration(dl.AnytimeNs),
		dl.AnytimeMakespan, dl.QualityRatio, dl.Truncated, dl.FullMakespan)

	port, err := portfolioCase(cfg)
	if err != nil {
		return err
	}
	portName := "LoadgenPortfolio"
	current[portName] = port
	fmt.Printf("%-38s race of %d engines %v (winner %s); warm routed p50 %v vs direct %v = %.3fx overhead (%d winner hits)\n",
		portName, port.PortfolioEngines, time.Duration(port.RaceNs), port.PortfolioWinner,
		time.Duration(port.WinnerRoutedP50Ns), time.Duration(port.DirectP50Ns), port.WarmOverheadX, port.WinnerHits)

	net, err := netCase(cfg)
	if err != nil {
		return err
	}
	netName := fmt.Sprintf("LoadgenNet%dTasks%dProcs", cfg.hitTasks, cfg.hitProcs)
	current[netName] = net
	fmt.Printf("%-38s net cold %7.2f sched/s (p99 %v)  net warm %9.0f sched/s (p50 %v, p99 %v) = %.0f%% of in-process warm  [rejected %d cancelled %d shed %.0f%%]\n",
		netName, net.NetColdSchedPerSec, time.Duration(net.NetColdP99Ns),
		net.NetWarmSchedPerSec, time.Duration(net.NetWarmP50Ns), time.Duration(net.NetWarmP99Ns),
		100*net.NetVsInprocWarmX, net.Rejected, net.Cancelled, 100*net.ShedFraction)

	hedge, err := hedgeCase(cfg)
	if err != nil {
		return err
	}
	hedgeName := "LoadgenNetHedge"
	current[hedgeName] = hedge
	fmt.Printf("%-38s slow home node (+%v): warm p99 unhedged %v vs hedged %v = %.1fx win (%d hedges)\n",
		hedgeName, cfg.hedgeDelay, time.Duration(hedge.UnhedgedP99Ns), time.Duration(hedge.HedgedP99Ns),
		hedge.HedgeWinX, hedge.Hedges)

	l2r, err := l2RestartCase(cfg)
	if err != nil {
		return err
	}
	l2Name := "LoadgenNetL2Restart"
	current[l2Name] = l2r
	fmt.Printf("%-38s cold %v, disk hit after restart %v: %.0fx (l2 hits %d)\n",
		l2Name, time.Duration(l2r.ColdNs), time.Duration(l2r.WarmHitNs), l2r.HitSpeedupX, l2r.L2Hits)

	if smoke {
		return smokeChecks(current, hitName, dlName, portName, netName, hedgeName, l2Name)
	}

	out := File{
		Note:     "Scheduling-service load generation (closed loop): cold and cache-hit throughput and latency per worker count, plus the cache-hit speedup on one mid-scale instance. Baseline is preserved across runs; delete this file to re-baseline. Cold throughput is compute-bound and only scales with workers when the host has as many CPUs (see \"cpus\").",
		CPUs:     cpus,
		Current:  current,
		SpeedupX: map[string]Speedup{},
	}
	if prev, err := load(path); err != nil {
		return err
	} else if prev != nil && len(prev.Baseline) > 0 {
		out.Baseline = prev.Baseline
		if prev.Note != "" {
			out.Note = prev.Note
		}
	}
	justBaselined := map[string]bool{}
	if out.Baseline == nil {
		out.Baseline = out.Current
		for name := range out.Current {
			justBaselined[name] = true
		}
		fmt.Println("no existing baseline: current run recorded as baseline")
	} else {
		for name, cur := range out.Current {
			if _, ok := out.Baseline[name]; !ok {
				out.Baseline[name] = cur
				justBaselined[name] = true
				fmt.Printf("%-38s new case: current run backfilled into baseline\n", name)
			}
		}
	}
	for name, cur := range out.Current {
		base, ok := out.Baseline[name]
		if !ok {
			continue
		}
		var sp Speedup
		if base.ColdSchedPerSec > 0 && cur.ColdSchedPerSec > 0 {
			sp.ColdThroughput = cur.ColdSchedPerSec / base.ColdSchedPerSec
		}
		if base.WarmHitNs > 0 && cur.WarmHitNs > 0 {
			sp.WarmHitNs = base.WarmHitNs / cur.WarmHitNs
		}
		if sp != (Speedup{}) {
			out.SpeedupX[name] = sp
		}
	}
	warnStale(&out, justBaselined)

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// smokeChecks validates the invariants a CI smoke run cares about: the
// cache must actually serve hits, hits must beat cold runs, the
// deadline-bounded anytime result must be a valid (bound-respecting,
// no-better-than-full) schedule, and the network layer must show its three
// wins — warm hits over HTTP, a hedging tail-latency cut, and a disk hit
// after restart.
func smokeChecks(current map[string]Result, hitName, dlName, portName, netName, hedgeName, l2Name string) error {
	special := map[string]bool{hitName: true, dlName: true, portName: true, netName: true, hedgeName: true, l2Name: true}
	for name, r := range current {
		if special[name] {
			continue
		}
		if r.WarmSchedPerSec <= r.ColdSchedPerSec {
			return fmt.Errorf("%s: warm throughput %.2f/s did not beat cold %.2f/s",
				name, r.WarmSchedPerSec, r.ColdSchedPerSec)
		}
	}
	hit := current[hitName]
	if hit.HitSpeedupX < 2 {
		return fmt.Errorf("%s: cache hit only %.1fx faster than cold", hitName, hit.HitSpeedupX)
	}
	dl := current[dlName]
	if dl.QualityRatio < 1 {
		return fmt.Errorf("%s: quality ratio %.4f below 1 — schedule beats the certified lower bound", dlName, dl.QualityRatio)
	}
	if dl.AnytimeMakespan < dl.FullMakespan*(1-1e-9) {
		return fmt.Errorf("%s: anytime makespan %.6g better than the full run's %.6g", dlName, dl.AnytimeMakespan, dl.FullMakespan)
	}
	if err := portfolioChecks(current[portName], portName); err != nil {
		return err
	}
	net := current[netName]
	if net.NetWarmSchedPerSec <= net.NetColdSchedPerSec {
		return fmt.Errorf("%s: warm network throughput %.2f/s did not beat cold %.2f/s",
			netName, net.NetWarmSchedPerSec, net.NetColdSchedPerSec)
	}
	if net.NetVsInprocWarmX <= 0.02 {
		return fmt.Errorf("%s: warm network throughput is only %.1f%% of in-process",
			netName, 100*net.NetVsInprocWarmX)
	}
	hedge := current[hedgeName]
	if hedge.Hedges == 0 {
		return fmt.Errorf("%s: no hedges fired against a slow home node", hedgeName)
	}
	if hedge.HedgedP99Ns >= hedge.UnhedgedP99Ns {
		return fmt.Errorf("%s: hedged p99 %v no better than unhedged %v",
			hedgeName, time.Duration(hedge.HedgedP99Ns), time.Duration(hedge.UnhedgedP99Ns))
	}
	l2r := current[l2Name]
	if l2r.L2Hits == 0 {
		return fmt.Errorf("%s: restarted node served no disk hits", l2Name)
	}
	if l2r.HitSpeedupX < 2 {
		return fmt.Errorf("%s: disk hit only %.1fx faster than cold", l2Name, l2r.HitSpeedupX)
	}
	fmt.Println("smoke checks passed")
	return nil
}

// portfolioSmoke is the -portfolio-smoke entry point: the portfolio case
// alone at smoke scale, its invariants asserted, no file written. CI runs
// this under -race (make portfolio-smoke), so it also shakes the race
// itself for data races.
func portfolioSmoke() error {
	cfg := smokeConfig()
	port, err := portfolioCase(cfg)
	if err != nil {
		return err
	}
	name := "LoadgenPortfolio"
	fmt.Printf("%-38s race of %d engines %v (winner %s); warm routed p50 %v vs direct %v = %.3fx overhead (%d winner hits)\n",
		name, port.PortfolioEngines, time.Duration(port.RaceNs), port.PortfolioWinner,
		time.Duration(port.WinnerRoutedP50Ns), time.Duration(port.DirectP50Ns), port.WarmOverheadX, port.WinnerHits)
	if err := portfolioChecks(port, name); err != nil {
		return err
	}
	fmt.Println("portfolio smoke passed")
	return nil
}

// portfolioChecks validates the portfolio case's invariants: the winner
// cache must actually route (portfolioCase already asserts the hit count
// and the routed-vs-race makespan equality; failures surface as errors),
// and the routing overhead must stay moderate. The smoke bound is looser
// than the 1.10x the bench gate enforces on the committed file — a CI smoke
// host is noisy and measures few reps.
func portfolioChecks(port Result, portName string) error {
	if port.PortfolioWinner == "" {
		return fmt.Errorf("%s: race committed no winner", portName)
	}
	if port.WinnerHits == 0 {
		return fmt.Errorf("%s: no winner-cache hits", portName)
	}
	if port.WarmOverheadX > 1.25 {
		return fmt.Errorf("%s: winner-routed p50 is %.2fx the direct call (smoke bound 1.25x)",
			portName, port.WarmOverheadX)
	}
	return nil
}

// stream builds n distinct scheduling requests (different seeds, therefore
// different fingerprints) over one cluster size.
func stream(n, tasks, procs int, seedBase int64) ([]locmps.ServiceRequest, error) {
	reqs := make([]locmps.ServiceRequest, n)
	for i := range reqs {
		p := locmps.DefaultSynthParams()
		p.Tasks = tasks
		p.CCR = 0.1
		p.Seed = seedBase + int64(i)
		tg, err := locmps.Synthetic(p)
		if err != nil {
			return nil, err
		}
		reqs[i] = locmps.ServiceRequest{
			Graph:   tg,
			Cluster: locmps.Cluster{P: procs, Bandwidth: 12.5e6, Overlap: true},
		}
	}
	return reqs, nil
}

// drive pushes rounds×reqs through the service with `concurrency` closed-loop
// submitters and returns the wall time and per-request latencies.
func drive(svc *locmps.Service, reqs []locmps.ServiceRequest, rounds, concurrency int) (time.Duration, []time.Duration, error) {
	total := rounds * len(reqs)
	lats := make([]time.Duration, total)
	sem := make(chan struct{}, concurrency)
	errCh := make(chan error, total)
	var wg sync.WaitGroup
	begin := time.Now()
	for i := 0; i < total; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			req := reqs[i%len(reqs)]
			t0 := time.Now()
			if _, err := svc.Schedule(req); err != nil {
				errCh <- err
				return
			}
			lats[i] = time.Since(t0)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(begin)
	select {
	case err := <-errCh:
		return 0, nil, err
	default:
	}
	return elapsed, lats, nil
}

// quantile is the nearest-rank percentile of lats — the same rank rule as
// internal/latring, so the driver-side and service-side quantiles agree.
func quantile(lats []time.Duration, q int) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	cp := append([]time.Duration(nil), lats...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	i := (len(cp)*q + 99) / 100
	if i < 1 {
		i = 1
	}
	if i > len(cp) {
		i = len(cp)
	}
	return cp[i-1]
}

// throughputCase measures one worker count: a cold pass over distinct
// requests, then warm rounds served from the result cache.
func throughputCase(workers int, cfg config) (Result, error) {
	reqs, err := stream(cfg.distinct, cfg.tasks, cfg.procs, 1000)
	if err != nil {
		return Result{}, err
	}
	svc := locmps.NewService(locmps.ServiceConfig{
		Shards:          workers,
		WorkersPerShard: 1,
		QueueDepth:      256,
		CacheEntries:    4096,
	})
	defer svc.Close()

	// Oversubscribe the submitters slightly so every shard queue stays fed.
	concurrency := 2 * workers
	coldWall, coldLats, err := drive(svc, reqs, 1, concurrency)
	if err != nil {
		return Result{}, err
	}
	warmWall, warmLats, err := drive(svc, reqs, cfg.warmRounds, concurrency)
	if err != nil {
		return Result{}, err
	}
	st := svc.Stats()
	if st.Failed != 0 || st.Rejected != 0 {
		return Result{}, fmt.Errorf("workers=%d: %d failed, %d rejected requests", workers, st.Failed, st.Rejected)
	}
	return Result{
		Workers:         workers,
		Distinct:        cfg.distinct,
		SearchWorkers:   st.SearchWorkers,
		ColdSchedPerSec: float64(len(reqs)) / coldWall.Seconds(),
		ColdP50Ns:       float64(quantile(coldLats, 50)),
		ColdP99Ns:       float64(quantile(coldLats, 99)),
		WarmSchedPerSec: float64(len(warmLats)) / warmWall.Seconds(),
		WarmP50Ns:       float64(quantile(warmLats, 50)),
		WarmP99Ns:       float64(quantile(warmLats, 99)),
		Rejected:        st.Rejected,
		Cancelled:       st.Cancelled,
	}, nil
}

// hitSpeedupCase times one mid-scale instance cold, then repeatedly as a
// cache hit, and reports cold / p50(hit).
func hitSpeedupCase(cfg config) (Result, error) {
	reqs, err := stream(1, cfg.hitTasks, cfg.hitProcs, 5000)
	if err != nil {
		return Result{}, err
	}
	req := reqs[0]
	svc := locmps.NewService(locmps.ServiceConfig{
		Shards:          1,
		WorkersPerShard: 1,
		QueueDepth:      8,
		CacheEntries:    16,
	})
	defer svc.Close()

	t0 := time.Now()
	if _, err := svc.Schedule(req); err != nil {
		return Result{}, err
	}
	coldNs := float64(time.Since(t0))

	hits := make([]time.Duration, cfg.hitReps)
	for i := range hits {
		t0 = time.Now()
		if _, err := svc.Schedule(req); err != nil {
			return Result{}, err
		}
		hits[i] = time.Since(t0)
	}
	if st := svc.Stats(); st.CacheHits != uint64(cfg.hitReps) {
		return Result{}, fmt.Errorf("hit case: %d cache hits, want %d", st.CacheHits, cfg.hitReps)
	}
	warmNs := float64(quantile(hits, 50))
	return Result{
		ColdNs:      coldNs,
		WarmHitNs:   warmNs,
		HitSpeedupX: coldNs / warmNs,
	}, nil
}

// deadlineCase schedules one mid-scale instance under a wall-clock anytime
// budget and compares it against the full (unbudgeted) run of the same
// instance: how much makespan the deadline costs, and how close the anytime
// result stays to the certified lower bound. Deadline runs bypass the
// result cache, so the anytime measurement is always a real run.
//
// A wall-clock budget makes the committed schedule host-dependent: a
// preempted goroutine commits fewer search rounds inside the same deadline
// and records a worse quality ratio — pure scheduler noise. Preemption only
// ever loses rounds, never gains them, so the measurement repeats dlReps
// times and the repetition with the best (lowest) quality ratio is
// recorded: that run is the closest to what the budget itself buys.
func deadlineCase(cfg config) (Result, error) {
	reqs, err := stream(1, cfg.hitTasks, cfg.hitProcs, 7000)
	if err != nil {
		return Result{}, err
	}
	req := reqs[0]
	svc := locmps.NewService(locmps.ServiceConfig{
		Shards:          1,
		WorkersPerShard: 1,
		QueueDepth:      8,
		CacheEntries:    16,
	})
	defer svc.Close()
	ctx := context.Background()

	full, err := svc.ScheduleAnytime(ctx, req, locmps.Budget{})
	if err != nil {
		return Result{}, err
	}
	reps := cfg.dlReps
	if reps < 1 {
		reps = 1
	}
	best := Result{
		DeadlineNs:   float64(cfg.deadline),
		FullMakespan: full.Schedule.Makespan,
	}
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		any, err := svc.ScheduleAnytime(ctx, req, locmps.Budget{Deadline: t0.Add(cfg.deadline)})
		if err != nil {
			return Result{}, err
		}
		if rep == 0 || any.Ratio < best.QualityRatio {
			best.AnytimeNs = float64(time.Since(t0))
			best.AnytimeMakespan = any.Schedule.Makespan
			best.QualityRatio = any.Ratio
			best.Truncated = any.Truncated
		}
	}
	return best, nil
}

// portfolioCase races the default engine portfolio cold on one mid-scale
// instance, then measures the warm path the winner cache buys: repeat
// deadline-bounded requests (which bypass the result caches) route straight
// to the recorded winning engine. The same engine is also called directly —
// Options.Algorithm naming the winner — and the A/B p50 ratio is the
// routing overhead, which must stay within 10% (benchjson -gate enforces
// it on the committed file). The two variants alternate rep by rep so slow
// host drift cancels out of the ratio.
func portfolioCase(cfg config) (Result, error) {
	reqs, err := stream(1, cfg.hitTasks, cfg.hitProcs, 15000)
	if err != nil {
		return Result{}, err
	}
	raceReq := reqs[0]
	raceReq.Portfolio = locmps.DefaultPortfolio()
	svc := locmps.NewService(locmps.ServiceConfig{
		Shards:          1,
		WorkersPerShard: 1,
		QueueDepth:      8,
		CacheEntries:    16,
	})
	defer svc.Close()
	ctx := context.Background()

	t0 := time.Now()
	cold, err := svc.Schedule(raceReq)
	if err != nil {
		return Result{}, err
	}
	raceNs := float64(time.Since(t0))
	winner := cold.Algorithm

	directReq := reqs[0]
	directReq.Options = locmps.ServiceOptions{Algorithm: winner}
	reps := cfg.portReps
	if reps < 1 {
		reps = 1
	}
	budget := func() locmps.Budget {
		return locmps.Budget{Deadline: time.Now().Add(time.Minute)}
	}
	routed := make([]time.Duration, reps)
	direct := make([]time.Duration, reps)
	for i := 0; i < reps; i++ {
		t0 = time.Now()
		ar, err := svc.ScheduleAnytime(ctx, raceReq, budget())
		if err != nil {
			return Result{}, err
		}
		routed[i] = time.Since(t0)
		if ar.Schedule.Makespan != cold.Makespan {
			return Result{}, fmt.Errorf("portfolio case: winner-routed makespan %.6g != race's %.6g",
				ar.Schedule.Makespan, cold.Makespan)
		}
		t0 = time.Now()
		if _, err := svc.ScheduleAnytime(ctx, directReq, budget()); err != nil {
			return Result{}, err
		}
		direct[i] = time.Since(t0)
	}
	st := svc.Stats()
	if st.WinnerHits < uint64(reps) {
		return Result{}, fmt.Errorf("portfolio case: %d winner-cache hits, want >= %d — repeats re-raced",
			st.WinnerHits, reps)
	}
	r := Result{
		PortfolioEngines:  len(raceReq.Portfolio),
		RaceNs:            raceNs,
		PortfolioWinner:   winner,
		WinnerRoutedP50Ns: float64(quantile(routed, 50)),
		DirectP50Ns:       float64(quantile(direct, 50)),
		WinnerHits:        st.WinnerHits,
	}
	if r.DirectP50Ns > 0 {
		r.WarmOverheadX = r.WinnerRoutedP50Ns / r.DirectP50Ns
	}
	return r, nil
}

// warnStale flags cases whose baseline and current snapshots are
// byte-identical — the fingerprint of a backfilled, never re-measured
// baseline. Cases baselined by this very run are exempt: their equality is
// by construction, not staleness.
func warnStale(f *File, justBaselined map[string]bool) {
	for name, cur := range f.Current {
		base, ok := f.Baseline[name]
		if !ok || justBaselined[name] {
			continue
		}
		bj, err1 := json.Marshal(base)
		cj, err2 := json.Marshal(cur)
		if err1 == nil && err2 == nil && bytes.Equal(bj, cj) {
			fmt.Fprintf(os.Stderr,
				"loadgen: warning: %s baseline == current byte-for-byte (stale backfill); delete %s to re-baseline\n",
				name, "BENCH_serve.json")
		}
	}
}

// node is one self-hosted scheduling node: a Service behind the HTTP
// transport on a loopback port.
type node struct {
	svc *locmps.Service
	srv *locmps.HTTPServer
	hs  *http.Server
	url string
}

// startNode boots a node; wrap, when non-nil, interposes on the HTTP
// handler (the hedging case uses it to slow one node down).
func startNode(cfg locmps.ServiceConfig, wrap func(http.Handler) http.Handler) (*node, error) {
	svc := locmps.NewService(cfg)
	srv := locmps.NewHTTPServer(svc, locmps.HTTPServerConfig{})
	h := http.Handler(srv.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Close()
		return nil, err
	}
	n := &node{svc: svc, srv: srv, hs: &http.Server{Handler: h}, url: "http://" + ln.Addr().String()}
	go n.hs.Serve(ln)
	return n, nil
}

func (n *node) stop() {
	n.hs.Close()
	n.svc.Close()
}

// slowBy wraps a handler so /v1/schedule stalls for d before being served —
// a deterministic slow backend for the hedging case.
func slowBy(d time.Duration) func(http.Handler) http.Handler {
	return func(inner http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/schedule") {
				time.Sleep(d)
			}
			inner.ServeHTTP(w, r)
		})
	}
}

// driveClient is drive over HTTP: rounds×reqs closed-loop through a fleet
// client.
func driveClient(c *locmps.Client, reqs []locmps.ServiceRequest, rounds, concurrency int) (time.Duration, []time.Duration, error) {
	total := rounds * len(reqs)
	lats := make([]time.Duration, total)
	sem := make(chan struct{}, concurrency)
	errCh := make(chan error, total)
	ctx := context.Background()
	var wg sync.WaitGroup
	begin := time.Now()
	for i := 0; i < total; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			t0 := time.Now()
			if _, err := c.Schedule(ctx, reqs[i%len(reqs)]); err != nil {
				errCh <- err
				return
			}
			lats[i] = time.Since(t0)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(begin)
	select {
	case err := <-errCh:
		return 0, nil, err
	default:
	}
	return elapsed, lats, nil
}

// sumCounters folds the per-node admission and disruption counters into r.
func sumCounters(r *Result, nodes ...*node) {
	var served uint64
	for _, n := range nodes {
		st := n.srv.Stats()
		r.Rejected += st.Rejected
		r.Cancelled += st.Cancelled
		r.Shed += st.Shed
		r.L2Hits += st.L2Hits
		served += st.Served
	}
	if total := served + r.Shed; total > 0 {
		r.ShedFraction = float64(r.Shed) / float64(total)
	}
}

// netCase drives the mid-scale instance set over HTTP against two
// self-hosted nodes — cold, then warm out of the nodes' caches — and
// measures the warm network throughput as a fraction of the in-process warm
// throughput on the identical request set. The fraction is the cost of the
// wire; the consistent-hash client keeps it bounded by routing repeat
// requests to the node whose cache is warm for them.
func netCase(cfg config) (Result, error) {
	reqs, err := stream(cfg.netDistinct, cfg.hitTasks, cfg.hitProcs, 9000)
	if err != nil {
		return Result{}, err
	}
	svcCfg := locmps.ServiceConfig{Shards: 2, WorkersPerShard: 1, QueueDepth: 256, CacheEntries: 4096}

	// In-process reference: warm throughput on the same stream.
	ref := locmps.NewService(svcCfg)
	defer ref.Close()
	if _, _, err := drive(ref, reqs, 1, 4); err != nil {
		return Result{}, err
	}
	inprocWall, _, err := drive(ref, reqs, cfg.netRounds, 4)
	if err != nil {
		return Result{}, err
	}
	inprocWarm := float64(cfg.netRounds*len(reqs)) / inprocWall.Seconds()

	a, err := startNode(svcCfg, nil)
	if err != nil {
		return Result{}, err
	}
	defer a.stop()
	b, err := startNode(svcCfg, nil)
	if err != nil {
		return Result{}, err
	}
	defer b.stop()
	// Hedging off: this case measures steady-state throughput, and hedging
	// cold multi-hundred-ms searches would only duplicate work.
	client, err := locmps.NewClient(locmps.ClientConfig{Nodes: []string{a.url, b.url}, DisableHedging: true})
	if err != nil {
		return Result{}, err
	}
	defer client.Close()
	waitCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = client.WaitReady(waitCtx)
	cancel()
	if err != nil {
		return Result{}, err
	}

	coldWall, coldLats, err := driveClient(client, reqs, 1, 4)
	if err != nil {
		return Result{}, err
	}
	warmWall, warmLats, err := driveClient(client, reqs, cfg.netRounds, 4)
	if err != nil {
		return Result{}, err
	}
	r := Result{
		Distinct:              cfg.netDistinct,
		NetColdSchedPerSec:    float64(len(coldLats)) / coldWall.Seconds(),
		NetColdP50Ns:          float64(quantile(coldLats, 50)),
		NetColdP99Ns:          float64(quantile(coldLats, 99)),
		NetWarmSchedPerSec:    float64(len(warmLats)) / warmWall.Seconds(),
		NetWarmP50Ns:          float64(quantile(warmLats, 50)),
		NetWarmP99Ns:          float64(quantile(warmLats, 99)),
		InprocWarmSchedPerSec: inprocWarm,
	}
	if inprocWarm > 0 {
		r.NetVsInprocWarmX = r.NetWarmSchedPerSec / inprocWarm
	}
	sumCounters(&r, a, b)
	return r, nil
}

// hedgeCase measures the hedging win: one node is made artificially slow,
// a request homed there is driven warm with hedging off (p99 eats the full
// injected delay every time) and then with hedging on (the replica answers
// after the hedge delay instead).
func hedgeCase(cfg config) (Result, error) {
	svcCfg := locmps.ServiceConfig{Shards: 1, WorkersPerShard: 1, QueueDepth: 64, CacheEntries: 256}
	slow, err := startNode(svcCfg, slowBy(cfg.hedgeDelay))
	if err != nil {
		return Result{}, err
	}
	defer slow.stop()
	fast, err := startNode(svcCfg, nil)
	if err != nil {
		return Result{}, err
	}
	defer fast.stop()

	hedged, err := locmps.NewClient(locmps.ClientConfig{
		Nodes:      []string{slow.url, fast.url},
		HedgeFloor: 2 * time.Millisecond,
	})
	if err != nil {
		return Result{}, err
	}
	defer hedged.Close()
	unhedged, err := locmps.NewClient(locmps.ClientConfig{
		Nodes:          []string{slow.url, fast.url},
		DisableHedging: true,
	})
	if err != nil {
		return Result{}, err
	}
	defer unhedged.Close()

	// Find a request whose consistent-hash home is the slow node, and warm
	// both nodes for it directly (no HTTP) so every measured request is a
	// cache hit.
	var req locmps.ServiceRequest
	found := false
	for seed := int64(11000); seed < 11128; seed++ {
		reqs, err := stream(1, cfg.tasks, cfg.procs, seed)
		if err != nil {
			return Result{}, err
		}
		key, err := reqs[0].Fingerprint()
		if err != nil {
			return Result{}, err
		}
		if primary, _ := hedged.Route(key); primary == slow.url {
			req, found = reqs[0], true
			break
		}
	}
	if !found {
		return Result{}, fmt.Errorf("hedge case: no request homed at the slow node in 128 seeds")
	}
	if _, err := slow.svc.Schedule(req); err != nil {
		return Result{}, err
	}
	if _, err := fast.svc.Schedule(req); err != nil {
		return Result{}, err
	}

	measure := func(c *locmps.Client) ([]time.Duration, error) {
		lats := make([]time.Duration, cfg.hedgeReps)
		ctx := context.Background()
		for i := range lats {
			t0 := time.Now()
			if _, err := c.Schedule(ctx, req); err != nil {
				return nil, err
			}
			lats[i] = time.Since(t0)
		}
		return lats, nil
	}
	slowLats, err := measure(unhedged)
	if err != nil {
		return Result{}, err
	}
	fastLats, err := measure(hedged)
	if err != nil {
		return Result{}, err
	}
	r := Result{
		UnhedgedP99Ns: float64(quantile(slowLats, 99)),
		HedgedP99Ns:   float64(quantile(fastLats, 99)),
		Hedges:        hedged.Stats().Hedges,
	}
	if r.HedgedP99Ns > 0 {
		r.HedgeWinX = r.UnhedgedP99Ns / r.HedgedP99Ns
	}
	sumCounters(&r, slow, fast)
	return r, nil
}

// l2RestartCase runs one mid-scale instance cold on a node backed by a disk
// L2, tears the node down, boots a fresh node (empty L1) over the same
// directory, and times the same request again — now a disk hit served over
// HTTP, no search.
func l2RestartCase(cfg config) (Result, error) {
	dir, err := os.MkdirTemp("", "loadgen-l2-*")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)
	reqs, err := stream(1, cfg.hitTasks, cfg.hitProcs, 13000)
	if err != nil {
		return Result{}, err
	}
	req := reqs[0]
	ctx := context.Background()

	boot := func() (*node, *locmps.Client, error) {
		dc, err := locmps.OpenDiskCache(dir, 0)
		if err != nil {
			return nil, nil, err
		}
		n, err := startNode(locmps.ServiceConfig{Shards: 1, WorkersPerShard: 1, QueueDepth: 8, CacheEntries: 16, L2: dc}, nil)
		if err != nil {
			return nil, nil, err
		}
		c, err := locmps.NewClient(locmps.ClientConfig{Nodes: []string{n.url}})
		if err != nil {
			n.stop()
			return nil, nil, err
		}
		waitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
		err = c.WaitReady(waitCtx)
		cancel()
		if err != nil {
			c.Close()
			n.stop()
			return nil, nil, err
		}
		return n, c, nil
	}

	n1, c1, err := boot()
	if err != nil {
		return Result{}, err
	}
	t0 := time.Now()
	_, err = c1.Schedule(ctx, req)
	coldNs := float64(time.Since(t0))
	c1.Close()
	n1.stop()
	if err != nil {
		return Result{}, err
	}

	n2, c2, err := boot()
	if err != nil {
		return Result{}, err
	}
	defer n2.stop()
	defer c2.Close()
	t0 = time.Now()
	_, err = c2.Schedule(ctx, req)
	hitNs := float64(time.Since(t0))
	if err != nil {
		return Result{}, err
	}
	r := Result{ColdNs: coldNs, WarmHitNs: hitNs, HitSpeedupX: coldNs / hitNs}
	sumCounters(&r, n2)
	return r, nil
}

// remote drives already-running schedserved nodes (-addr): wait for health,
// push the smoke stream cold and warm, and report throughput plus the
// nodes' admission counters. It never writes BENCH_serve.json — remote
// numbers depend on whatever the nodes are, and on their cache history.
func remote(addr string, smoke bool, expectL2 int) error {
	cfg := fullConfig()
	if smoke {
		cfg = smokeConfig()
	}
	nodes := strings.Split(addr, ",")
	client, err := locmps.NewClient(locmps.ClientConfig{Nodes: nodes})
	if err != nil {
		return err
	}
	defer client.Close()
	ctx := context.Background()
	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	err = client.WaitReady(waitCtx)
	cancel()
	if err != nil {
		return err
	}
	fmt.Printf("%d node(s) ready: %s\n", len(nodes), strings.Join(client.Nodes(), " "))

	reqs, err := stream(cfg.distinct, cfg.tasks, cfg.procs, 1000)
	if err != nil {
		return err
	}
	coldWall, coldLats, err := driveClient(client, reqs, 1, 4)
	if err != nil {
		return err
	}
	warmWall, warmLats, err := driveClient(client, reqs, cfg.warmRounds, 4)
	if err != nil {
		return err
	}
	fmt.Printf("first pass %8.2f sched/s (p50 %v, p99 %v)   replay %9.0f sched/s (p50 %v, p99 %v)\n",
		float64(len(coldLats))/coldWall.Seconds(), quantile(coldLats, 50), quantile(coldLats, 99),
		float64(len(warmLats))/warmWall.Seconds(), quantile(warmLats, 50), quantile(warmLats, 99))

	stats, err := client.NodeStats(ctx)
	if err != nil {
		return err
	}
	var rejected, cancelled, shed, served, failed, l2hits uint64
	for _, n := range client.Nodes() {
		st := stats[n]
		rejected += st.Rejected
		cancelled += st.Cancelled
		shed += st.Shed
		served += st.Served
		failed += st.Failed
		l2hits += st.L2Hits
		fmt.Printf("%-28s requests %5d  cache hits %5d  l2 hits %4d  rejected %3d  cancelled %3d  shed %3d\n",
			n, st.Requests, st.CacheHits, st.L2Hits, st.Rejected, st.Cancelled, st.Shed)
	}
	var shedFrac float64
	if total := served + shed; total > 0 {
		shedFrac = float64(shed) / float64(total)
	}
	fmt.Printf("totals: rejected %d, cancelled %d, shed %d (%.1f%% of attempts), l2 hits %d\n",
		rejected, cancelled, shed, 100*shedFrac, l2hits)
	if failed != 0 {
		return fmt.Errorf("nodes report %d failed runs", failed)
	}
	if cs := client.Stats(); cs.Hedges+cs.Failovers > 0 {
		fmt.Printf("client: %d hedges (%d wins), %d failovers\n", cs.Hedges, cs.HedgeWins, cs.Failovers)
	}
	if expectL2 > 0 && l2hits < uint64(expectL2) {
		return fmt.Errorf("expected >= %d L2 hits across nodes, saw %d", expectL2, l2hits)
	}
	fmt.Println("remote drive passed")
	return nil
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("existing %s is not valid: %w", path, err)
	}
	return &f, nil
}
