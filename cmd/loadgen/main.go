// Command loadgen drives the scheduling service with a closed-loop load
// generator and records service-level throughput and latency in
// BENCH_serve.json so the serving layer's trajectory is tracked across PRs
// alongside the scheduler-kernel numbers in BENCH_locmps.json.
//
// Three phases per worker count (1, 2, 4):
//
//   - cold: a stream of distinct synthetic graphs, every request a cold
//     scheduler run on a warm worker (schedules/sec, p50/p99);
//   - warm: the same stream replayed, every request a content-addressed
//     cache hit (schedules/sec, p50/p99);
//   - hit speedup: one 50-task/64-processor instance measured cold, then
//     served from the cache — the ratio is the headline win of the
//     result cache.
//
// The file keeps a "baseline" (written once, preserved on reruns) and a
// "current" snapshot plus derived speedups, the same convention as
// BENCH_locmps.json; delete the file to re-baseline. The host's CPU count
// is recorded too: cold throughput is compute-bound, so scaling with worker
// count is only observable when the host has at least that many CPUs.
//
// Usage:
//
//	go run ./cmd/loadgen                # update BENCH_serve.json in place
//	go run ./cmd/loadgen -o out.json
//	go run ./cmd/loadgen -smoke         # reduced load, sanity checks, no file
//	go run ./cmd/loadgen -workers 2     # drive a single worker count
//	go run ./cmd/loadgen -deadline 5ms  # wall-clock budget for the anytime case
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"locmps"
)

// Result is one load-generation snapshot. Throughput cases fill the phase
// fields; the hit-speedup case fills the latency pair and the ratio.
type Result struct {
	Workers  int `json:"workers,omitempty"`
	Distinct int `json:"distinct_requests,omitempty"`
	// Cold phase: every request is a cold scheduler run.
	ColdSchedPerSec float64 `json:"cold_schedules_per_sec,omitempty"`
	ColdP50Ns       float64 `json:"cold_p50_ns,omitempty"`
	ColdP99Ns       float64 `json:"cold_p99_ns,omitempty"`
	// Warm phase: the same stream replayed out of the result cache.
	WarmSchedPerSec float64 `json:"warm_schedules_per_sec,omitempty"`
	WarmP50Ns       float64 `json:"warm_p50_ns,omitempty"`
	WarmP99Ns       float64 `json:"warm_p99_ns,omitempty"`
	// Hit-speedup case: one instance cold vs served from the cache.
	ColdNs      float64 `json:"cold_ns,omitempty"`
	WarmHitNs   float64 `json:"warm_hit_p50_ns,omitempty"`
	HitSpeedupX float64 `json:"hit_speedup_x,omitempty"`
	// Deadline case: one instance scheduled under a wall-clock anytime
	// budget against the same instance's full run. QualityRatio is the
	// anytime schedule's makespan over the instance's certified lower
	// bound (>= 1 always); Truncated says whether the budget actually cut
	// the search short on this host.
	DeadlineNs      float64 `json:"deadline_ns,omitempty"`
	AnytimeNs       float64 `json:"anytime_ns,omitempty"`
	AnytimeMakespan float64 `json:"anytime_makespan,omitempty"`
	FullMakespan    float64 `json:"full_makespan,omitempty"`
	QualityRatio    float64 `json:"quality_ratio,omitempty"`
	Truncated       bool    `json:"truncated,omitempty"`
}

// File is the on-disk layout of BENCH_serve.json.
type File struct {
	Note string `json:"note,omitempty"`
	// CPUs is the host's CPU count when "current" was recorded. Cold
	// throughput cannot scale past it regardless of worker count.
	CPUs     int                `json:"cpus"`
	Baseline map[string]Result  `json:"baseline"`
	Current  map[string]Result  `json:"current"`
	SpeedupX map[string]Speedup `json:"speedup_vs_baseline"`
}

// Speedup compares current against baseline: cold throughput as
// current/baseline (higher is better), warm hit latency as
// baseline/current (lower is better).
type Speedup struct {
	ColdThroughput float64 `json:"cold_throughput,omitempty"`
	WarmHitNs      float64 `json:"warm_hit_ns,omitempty"`
}

type config struct {
	workerCounts []int
	distinct     int
	tasks, procs int
	warmRounds   int
	hitTasks     int
	hitProcs     int
	hitReps      int
	deadline     time.Duration
}

func fullConfig() config {
	return config{
		workerCounts: []int{1, 2, 4},
		distinct:     24, tasks: 24, procs: 16,
		warmRounds: 3,
		hitTasks:   50, hitProcs: 64, hitReps: 32,
		deadline: 5 * time.Millisecond,
	}
}

func smokeConfig() config {
	return config{
		workerCounts: []int{1, 2},
		distinct:     6, tasks: 12, procs: 8,
		warmRounds: 2,
		hitTasks:   20, hitProcs: 16, hitReps: 8,
		deadline: 2 * time.Millisecond,
	}
}

func main() {
	path := flag.String("o", "BENCH_serve.json", "output file (baseline inside is preserved)")
	smoke := flag.Bool("smoke", false, "reduced load for CI: run the phases, check invariants, write no file")
	workers := flag.Int("workers", 0, "drive only this worker count instead of the default ladder")
	deadline := flag.Duration("deadline", 0, "wall-clock budget for the anytime deadline case (0 keeps the config default)")
	flag.Parse()
	if err := run(*path, *smoke, *workers, *deadline); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(path string, smoke bool, workers int, deadline time.Duration) error {
	cfg := fullConfig()
	if smoke {
		cfg = smokeConfig()
	}
	if workers > 0 {
		cfg.workerCounts = []int{workers}
	}
	if deadline > 0 {
		cfg.deadline = deadline
	}
	cpus := runtime.NumCPU()
	if procs, max := runtime.GOMAXPROCS(0), cfg.workerCounts[len(cfg.workerCounts)-1]; max > procs {
		fmt.Fprintf(os.Stderr,
			"loadgen: warning: %d workers exceed GOMAXPROCS=%d; they will time-slice, not parallelize — cold throughput and latency will not reflect %d-way hardware\n",
			max, procs, max)
	}

	current := map[string]Result{}
	for _, w := range cfg.workerCounts {
		r, err := throughputCase(w, cfg)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("LoadgenWorkers%d", w)
		current[name] = r
		fmt.Printf("%-38s cold %8.2f sched/s (p50 %v, p99 %v)  warm %10.0f sched/s (p50 %v, p99 %v)\n",
			name, r.ColdSchedPerSec, time.Duration(r.ColdP50Ns), time.Duration(r.ColdP99Ns),
			r.WarmSchedPerSec, time.Duration(r.WarmP50Ns), time.Duration(r.WarmP99Ns))
	}
	hit, err := hitSpeedupCase(cfg)
	if err != nil {
		return err
	}
	hitName := fmt.Sprintf("LoadgenHitSpeedup%dTasks%dProcs", cfg.hitTasks, cfg.hitProcs)
	current[hitName] = hit
	fmt.Printf("%-38s cold %v, cache hit %v: %.0fx\n",
		hitName, time.Duration(hit.ColdNs), time.Duration(hit.WarmHitNs), hit.HitSpeedupX)

	dl, err := deadlineCase(cfg)
	if err != nil {
		return err
	}
	dlName := "LoadgenDeadline"
	current[dlName] = dl
	fmt.Printf("%-38s budget %v: anytime %v (makespan %.3g, quality %.3fx bound, truncated=%v) vs full %.3g\n",
		dlName, time.Duration(dl.DeadlineNs), time.Duration(dl.AnytimeNs),
		dl.AnytimeMakespan, dl.QualityRatio, dl.Truncated, dl.FullMakespan)

	if smoke {
		return smokeChecks(current, hitName, dlName)
	}

	out := File{
		Note:     "Scheduling-service load generation (closed loop): cold and cache-hit throughput and latency per worker count, plus the cache-hit speedup on one mid-scale instance. Baseline is preserved across runs; delete this file to re-baseline. Cold throughput is compute-bound and only scales with workers when the host has as many CPUs (see \"cpus\").",
		CPUs:     cpus,
		Current:  current,
		SpeedupX: map[string]Speedup{},
	}
	if prev, err := load(path); err != nil {
		return err
	} else if prev != nil && len(prev.Baseline) > 0 {
		out.Baseline = prev.Baseline
		if prev.Note != "" {
			out.Note = prev.Note
		}
	}
	justBaselined := map[string]bool{}
	if out.Baseline == nil {
		out.Baseline = out.Current
		for name := range out.Current {
			justBaselined[name] = true
		}
		fmt.Println("no existing baseline: current run recorded as baseline")
	} else {
		for name, cur := range out.Current {
			if _, ok := out.Baseline[name]; !ok {
				out.Baseline[name] = cur
				justBaselined[name] = true
				fmt.Printf("%-38s new case: current run backfilled into baseline\n", name)
			}
		}
	}
	for name, cur := range out.Current {
		base, ok := out.Baseline[name]
		if !ok {
			continue
		}
		var sp Speedup
		if base.ColdSchedPerSec > 0 && cur.ColdSchedPerSec > 0 {
			sp.ColdThroughput = cur.ColdSchedPerSec / base.ColdSchedPerSec
		}
		if base.WarmHitNs > 0 && cur.WarmHitNs > 0 {
			sp.WarmHitNs = base.WarmHitNs / cur.WarmHitNs
		}
		if sp != (Speedup{}) {
			out.SpeedupX[name] = sp
		}
	}
	warnStale(&out, justBaselined)

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// smokeChecks validates the invariants a CI smoke run cares about: the
// cache must actually serve hits, hits must beat cold runs, and the
// deadline-bounded anytime result must be a valid (bound-respecting,
// no-better-than-full) schedule.
func smokeChecks(current map[string]Result, hitName, dlName string) error {
	for name, r := range current {
		if name == hitName || name == dlName {
			continue
		}
		if r.WarmSchedPerSec <= r.ColdSchedPerSec {
			return fmt.Errorf("%s: warm throughput %.2f/s did not beat cold %.2f/s",
				name, r.WarmSchedPerSec, r.ColdSchedPerSec)
		}
	}
	hit := current[hitName]
	if hit.HitSpeedupX < 2 {
		return fmt.Errorf("%s: cache hit only %.1fx faster than cold", hitName, hit.HitSpeedupX)
	}
	dl := current[dlName]
	if dl.QualityRatio < 1 {
		return fmt.Errorf("%s: quality ratio %.4f below 1 — schedule beats the certified lower bound", dlName, dl.QualityRatio)
	}
	if dl.AnytimeMakespan < dl.FullMakespan*(1-1e-9) {
		return fmt.Errorf("%s: anytime makespan %.6g better than the full run's %.6g", dlName, dl.AnytimeMakespan, dl.FullMakespan)
	}
	fmt.Println("smoke checks passed")
	return nil
}

// stream builds n distinct scheduling requests (different seeds, therefore
// different fingerprints) over one cluster size.
func stream(n, tasks, procs int, seedBase int64) ([]locmps.ServiceRequest, error) {
	reqs := make([]locmps.ServiceRequest, n)
	for i := range reqs {
		p := locmps.DefaultSynthParams()
		p.Tasks = tasks
		p.CCR = 0.1
		p.Seed = seedBase + int64(i)
		tg, err := locmps.Synthetic(p)
		if err != nil {
			return nil, err
		}
		reqs[i] = locmps.ServiceRequest{
			Graph:   tg,
			Cluster: locmps.Cluster{P: procs, Bandwidth: 12.5e6, Overlap: true},
		}
	}
	return reqs, nil
}

// drive pushes rounds×reqs through the service with `concurrency` closed-loop
// submitters and returns the wall time and per-request latencies.
func drive(svc *locmps.Service, reqs []locmps.ServiceRequest, rounds, concurrency int) (time.Duration, []time.Duration, error) {
	total := rounds * len(reqs)
	lats := make([]time.Duration, total)
	sem := make(chan struct{}, concurrency)
	errCh := make(chan error, total)
	var wg sync.WaitGroup
	begin := time.Now()
	for i := 0; i < total; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			req := reqs[i%len(reqs)]
			t0 := time.Now()
			if _, err := svc.Schedule(req); err != nil {
				errCh <- err
				return
			}
			lats[i] = time.Since(t0)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(begin)
	select {
	case err := <-errCh:
		return 0, nil, err
	default:
	}
	return elapsed, lats, nil
}

func quantile(lats []time.Duration, q int) time.Duration {
	cp := append([]time.Duration(nil), lats...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp[(len(cp)-1)*q/100]
}

// throughputCase measures one worker count: a cold pass over distinct
// requests, then warm rounds served from the result cache.
func throughputCase(workers int, cfg config) (Result, error) {
	reqs, err := stream(cfg.distinct, cfg.tasks, cfg.procs, 1000)
	if err != nil {
		return Result{}, err
	}
	svc := locmps.NewService(locmps.ServiceConfig{
		Shards:          workers,
		WorkersPerShard: 1,
		QueueDepth:      256,
		CacheEntries:    4096,
	})
	defer svc.Close()

	// Oversubscribe the submitters slightly so every shard queue stays fed.
	concurrency := 2 * workers
	coldWall, coldLats, err := drive(svc, reqs, 1, concurrency)
	if err != nil {
		return Result{}, err
	}
	warmWall, warmLats, err := drive(svc, reqs, cfg.warmRounds, concurrency)
	if err != nil {
		return Result{}, err
	}
	st := svc.Stats()
	if st.Failed != 0 || st.Rejected != 0 {
		return Result{}, fmt.Errorf("workers=%d: %d failed, %d rejected requests", workers, st.Failed, st.Rejected)
	}
	return Result{
		Workers:         workers,
		Distinct:        cfg.distinct,
		ColdSchedPerSec: float64(len(reqs)) / coldWall.Seconds(),
		ColdP50Ns:       float64(quantile(coldLats, 50)),
		ColdP99Ns:       float64(quantile(coldLats, 99)),
		WarmSchedPerSec: float64(len(warmLats)) / warmWall.Seconds(),
		WarmP50Ns:       float64(quantile(warmLats, 50)),
		WarmP99Ns:       float64(quantile(warmLats, 99)),
	}, nil
}

// hitSpeedupCase times one mid-scale instance cold, then repeatedly as a
// cache hit, and reports cold / p50(hit).
func hitSpeedupCase(cfg config) (Result, error) {
	reqs, err := stream(1, cfg.hitTasks, cfg.hitProcs, 5000)
	if err != nil {
		return Result{}, err
	}
	req := reqs[0]
	svc := locmps.NewService(locmps.ServiceConfig{
		Shards:          1,
		WorkersPerShard: 1,
		QueueDepth:      8,
		CacheEntries:    16,
	})
	defer svc.Close()

	t0 := time.Now()
	if _, err := svc.Schedule(req); err != nil {
		return Result{}, err
	}
	coldNs := float64(time.Since(t0))

	hits := make([]time.Duration, cfg.hitReps)
	for i := range hits {
		t0 = time.Now()
		if _, err := svc.Schedule(req); err != nil {
			return Result{}, err
		}
		hits[i] = time.Since(t0)
	}
	if st := svc.Stats(); st.CacheHits != uint64(cfg.hitReps) {
		return Result{}, fmt.Errorf("hit case: %d cache hits, want %d", st.CacheHits, cfg.hitReps)
	}
	warmNs := float64(quantile(hits, 50))
	return Result{
		ColdNs:      coldNs,
		WarmHitNs:   warmNs,
		HitSpeedupX: coldNs / warmNs,
	}, nil
}

// deadlineCase schedules one mid-scale instance under a wall-clock anytime
// budget and compares it against the full (unbudgeted) run of the same
// instance: how much makespan the deadline costs, and how close the anytime
// result stays to the certified lower bound. Deadline runs bypass the
// result cache, so the anytime measurement is always a real run.
func deadlineCase(cfg config) (Result, error) {
	reqs, err := stream(1, cfg.hitTasks, cfg.hitProcs, 7000)
	if err != nil {
		return Result{}, err
	}
	req := reqs[0]
	svc := locmps.NewService(locmps.ServiceConfig{
		Shards:          1,
		WorkersPerShard: 1,
		QueueDepth:      8,
		CacheEntries:    16,
	})
	defer svc.Close()
	ctx := context.Background()

	full, err := svc.ScheduleAnytime(ctx, req, locmps.Budget{})
	if err != nil {
		return Result{}, err
	}
	t0 := time.Now()
	any, err := svc.ScheduleAnytime(ctx, req, locmps.Budget{Deadline: t0.Add(cfg.deadline)})
	if err != nil {
		return Result{}, err
	}
	return Result{
		DeadlineNs:      float64(cfg.deadline),
		AnytimeNs:       float64(time.Since(t0)),
		AnytimeMakespan: any.Schedule.Makespan,
		FullMakespan:    full.Schedule.Makespan,
		QualityRatio:    any.Ratio,
		Truncated:       any.Truncated,
	}, nil
}

// warnStale flags cases whose baseline and current snapshots are
// byte-identical — the fingerprint of a backfilled, never re-measured
// baseline. Cases baselined by this very run are exempt: their equality is
// by construction, not staleness.
func warnStale(f *File, justBaselined map[string]bool) {
	for name, cur := range f.Current {
		base, ok := f.Baseline[name]
		if !ok || justBaselined[name] {
			continue
		}
		bj, err1 := json.Marshal(base)
		cj, err2 := json.Marshal(cur)
		if err1 == nil && err2 == nil && bytes.Equal(bj, cj) {
			fmt.Fprintf(os.Stderr,
				"loadgen: warning: %s baseline == current byte-for-byte (stale backfill); delete %s to re-baseline\n",
				name, "BENCH_serve.json")
		}
	}
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("existing %s is not valid: %w", path, err)
	}
	return &f, nil
}
