// Command stress runs the randomized differential audit harness from the
// command line: n seeded workloads are generated, scheduled by the
// optimized LoC-MPS, the frozen reference and every registry algorithm,
// and every schedule is checked by the internal/audit oracle alongside the
// harness's metamorphic invariants. Any failure is greedily minimized and
// dumped as a reproducible JSON counterexample.
//
// Usage:
//
//	stress -seed 1 -n 500            # 500 cases from base seed 1
//	stress -seed 1 -n 50 -shape sp   # pin the topology
//	stress -case testdata/stress-1-17.json   # re-run a dumped counterexample
//
// Exit status is 0 when every case passes, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"locmps/internal/audit"
)

// counterexample is the JSON artifact dumped for each failing case.
type counterexample struct {
	// Failure is the original failing case and what broke.
	Failure audit.Failure `json:"failure"`
	// Minimized is the smallest shrunk case that still fails, with the
	// failure it produces (possibly a different stage than the original).
	Minimized audit.Failure `json:"minimized"`
}

func main() {
	var (
		seed     = flag.Int64("seed", 1, "base seed; case i derives deterministically from (seed, i)")
		n        = flag.Int("n", 100, "number of cases to run")
		shape    = flag.String("shape", "", "pin all cases to one topology ("+strings.Join(audit.Shapes, ", ")+"); empty samples all")
		out      = flag.String("out", "testdata", "directory for minimized counterexample dumps")
		caseFile = flag.String("case", "", "re-run a single dumped counterexample instead of generating cases")
		verbose  = flag.Bool("v", false, "print every case as it runs")
	)
	flag.Parse()

	if *caseFile != "" {
		os.Exit(rerun(*caseFile))
	}
	if *shape != "" && !validShape(*shape) {
		fmt.Fprintf(os.Stderr, "stress: unknown -shape %q (want one of %s)\n", *shape, strings.Join(audit.Shapes, ", "))
		os.Exit(2)
	}

	failures := audit.Stress(*seed, *n, *shape, func(i int, f *audit.Failure) {
		if f != nil {
			fmt.Fprintf(os.Stderr, "FAIL case %d: %v\n", i, f.Error())
		} else if *verbose {
			c := audit.CaseAt(*seed, i)
			if *shape != "" {
				c.Shape = *shape
			}
			fmt.Printf("ok   case %d: {%s}\n", i, c)
		}
	})
	if len(failures) == 0 {
		fmt.Printf("stress: %d cases passed (seed %d)\n", *n, *seed)
		return
	}
	for i, f := range failures {
		dump(*out, fmt.Sprintf("stress-%d-%d.json", *seed, i), f)
	}
	fmt.Fprintf(os.Stderr, "stress: %d/%d cases failed\n", len(failures), *n)
	os.Exit(1)
}

func validShape(s string) bool {
	for _, known := range audit.Shapes {
		if s == known {
			return true
		}
	}
	return false
}

// dump minimizes the failure and writes the counterexample JSON.
func dump(dir, name string, f audit.Failure) {
	minCase := audit.Minimize(f.Case, func(c audit.Case) bool { return audit.RunCase(c) != nil })
	minFail := audit.RunCase(minCase)
	if minFail == nil { // cannot happen: Minimize only moves between failing cases
		minFail = &f
	}
	ce := counterexample{Failure: f, Minimized: *minFail}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "stress:", err)
		return
	}
	path := filepath.Join(dir, name)
	data, err := json.MarshalIndent(ce, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "stress:", err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "stress:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "stress: minimized counterexample written to %s\n", path)
}

// rerun replays one dumped counterexample and reports its current status.
func rerun(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stress:", err)
		return 2
	}
	var ce counterexample
	if err := json.Unmarshal(data, &ce); err != nil {
		fmt.Fprintln(os.Stderr, "stress:", err)
		return 2
	}
	status := 0
	for _, c := range []audit.Case{ce.Minimized.Case, ce.Failure.Case} {
		if f := audit.RunCase(c); f != nil {
			fmt.Fprintf(os.Stderr, "FAIL {%s}: %v\n", c, f.Error())
			status = 1
		} else {
			fmt.Printf("ok   {%s}\n", c)
		}
	}
	return status
}
