// Command schedserved runs one scheduling-service node: a serve.Service
// behind the HTTP/JSON transport, optionally backed by a disk L2 cache so
// warm results survive restarts.
//
//	schedserved -addr 127.0.0.1:8080 -l2 /var/cache/locmps
//
// The node serves POST /v1/schedule, GET /v1/stats and GET /healthz and
// shuts down gracefully on SIGINT/SIGTERM, printing a final stats line.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"locmps/internal/serve"
	"locmps/internal/serve/httpserve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "schedserved:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		shards      = flag.Int("shards", 0, "service shards (0 = auto)")
		workers     = flag.Int("workers-per-shard", 0, "warm workers per shard (0 = default)")
		queue       = flag.Int("queue", 0, "per-shard queue depth (0 = default)")
		cacheEnts   = flag.Int("cache-entries", 0, "L1 result-cache entries (0 = default)")
		l2dir       = flag.String("l2", "", "disk L2 cache directory (empty = no L2)")
		l2max       = flag.Int64("l2-max-bytes", 0, "disk L2 size bound in bytes (0 = default)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently handled requests before shedding (0 = default)")
	)
	flag.Parse()

	cfg := serve.Config{
		Shards:          *shards,
		WorkersPerShard: *workers,
		QueueDepth:      *queue,
		CacheEntries:    *cacheEnts,
	}
	var dc *serve.DiskCache
	if *l2dir != "" {
		var err error
		if dc, err = serve.OpenDiskCache(*l2dir, *l2max); err != nil {
			return err
		}
		cfg.L2 = dc
	}
	svc := serve.New(cfg)
	defer svc.Close()
	node := httpserve.NewServer(svc, httpserve.ServerConfig{MaxInflight: *maxInflight})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: node.Handler()}
	fmt.Printf("schedserved listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}

	st := node.Stats()
	out, _ := json.Marshal(&st)
	fmt.Printf("schedserved final stats: %s\n", out)
	if dc != nil {
		l2 := dc.Stats()
		fmt.Printf("schedserved L2: entries=%d bytes=%d hits=%d misses=%d puts=%d evictions=%d corrupt=%d\n",
			l2.Entries, l2.Bytes, l2.Hits, l2.Misses, l2.Puts, l2.Evictions, l2.Corrupt)
	}
	return nil
}
