// Command experiments regenerates the paper's evaluation figures as text
// tables or CSV.
//
// Usage:
//
//	experiments -fig all            # every figure at quick scale
//	experiments -fig 5b -full       # one figure at full paper scale
//	experiments -fig 8a -csv        # CSV instead of a table
//
// Figure ids: 4a 4b 5a 5b 6 7 8a 8b 9a 9b 10a 10b 11 stats ablation (or
// "all"). Quick scale completes in seconds to a couple of minutes; -full
// mirrors the paper (30 graphs, up to 128 processors) and can take tens of
// minutes on one core.
//
// -workers bounds how many scheduler cells run concurrently; it defaults to
// GOMAXPROCS (one worker per CPU) and must be at least 1. Figures are
// deterministic for any worker count — the flag only trades wall-clock time
// for parallelism.
//
// -cpuprofile / -memprofile write pprof profiles of the run for
// `go tool pprof` (see also `make profile` for the benchmark binaries).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"

	"locmps"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "figure to regenerate (4a 4b 5a 5b 6 7 8a 8b 9a 9b 10a 10b 11 portfolio stats ablation or all)")
		portfolio  = flag.Bool("portfolio", false, "shorthand for -fig portfolio: race the engine portfolio against every single engine and tally per-instance winners")
		full       = flag.Bool("full", false, "paper-scale parameters (slow) instead of quick ones")
		csv        = flag.Bool("csv", false, "emit CSV instead of text tables")
		out        = flag.String("out", "", "also write each figure as <id>.csv into this directory")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "scheduler cells run concurrently (defaults to GOMAXPROCS, i.e. one per CPU; 1 = serial); must be at least 1, output is identical for any value")
		useServe   = flag.Bool("serve", true, "route scheduler runs through the scheduling service (result cache + warm workers); figures are identical either way")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()
	if *portfolio {
		*fig = "portfolio"
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -workers must be at least 1 (got %d); omit the flag to use one worker per CPU (GOMAXPROCS, currently %d)\n",
			*workers, runtime.GOMAXPROCS(0))
		os.Exit(2)
	}
	if err := profiled(*cpuprofile, *memprofile, func() error {
		return run(*fig, *full, *csv, *out, *workers, *useServe)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// profiled wraps fn with optional CPU and heap profiling. The heap profile
// is taken after a GC so it reflects live retention, not transient garbage.
func profiled(cpuPath, memPath string, fn func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := fn(); err != nil {
		return err
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

func run(fig string, full, csv bool, outDir string, workers int, useServe bool) error {
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	suite := locmps.QuickSuiteOptions()
	app := locmps.QuickAppOptions()
	if full {
		suite = locmps.PaperSuiteOptions()
		app = locmps.PaperAppOptions()
	}
	suite.Workers = workers
	app.Workers = workers
	if useServe {
		svc := locmps.NewService(locmps.ServiceConfig{
			Shards:          workers,
			WorkersPerShard: 1,
			QueueDepth:      2*workers + 8,
			CacheEntries:    4096,
		})
		defer func() {
			svc.Close()
			st := svc.Stats()
			fmt.Fprintf(os.Stderr,
				"service: %d requests, %d cold runs, %d cache hits, %d coalesced, p50 %v, p99 %v\n",
				st.Requests, st.Scheduled, st.CacheHits, st.Coalesced, st.P50, st.P99)
		}()
		suite.Service = svc
		app.Service = svc
	}

	ids := []string{fig}
	if fig == "all" {
		ids = []string{"4a", "4b", "5a", "5b", "6", "7", "8a", "8b", "9a", "9b", "10a", "10b", "11", "extended", "portfolio", "stats", "ablation"}
	}
	for _, id := range ids {
		if err := runOne(id, suite, app, csv, outDir); err != nil {
			return fmt.Errorf("fig %s: %w", id, err)
		}
	}
	return nil
}

func runOne(id string, suite locmps.SuiteOptions, app locmps.AppOptions, csv bool, outDir string) error {
	var emitErr error
	emit := func(f locmps.Figure) {
		if csv {
			fmt.Printf("# %s: %s\n%s\n", f.ID, f.Title, f.CSV())
		} else {
			fmt.Println(f.Table())
		}
		if outDir != "" && emitErr == nil {
			emitErr = os.WriteFile(filepath.Join(outDir, f.ID+".csv"), []byte(f.CSV()), 0o644)
		}
	}
	switch id {
	case "4a", "4b":
		f, err := locmps.Fig4(id[1], suite)
		if err != nil {
			return err
		}
		emit(f)
	case "5a", "5b":
		f, err := locmps.Fig5(id[1], suite)
		if err != nil {
			return err
		}
		emit(f)
	case "6":
		perf, times, err := locmps.Fig6(suite)
		if err != nil {
			return err
		}
		emit(perf)
		emit(times)
	case "7":
		ccsd, strassen, err := locmps.Fig7(app)
		if err != nil {
			return err
		}
		fmt.Println("// fig7a: CCSD-T1 task graph")
		fmt.Println(ccsd)
		fmt.Println("// fig7b: Strassen task graph")
		fmt.Println(strassen)
	case "8a":
		f, err := locmps.Fig8(true, app)
		if err != nil {
			return err
		}
		emit(f)
	case "8b":
		f, err := locmps.Fig8(false, app)
		if err != nil {
			return err
		}
		emit(f)
	case "9a":
		f, err := locmps.Fig9(1024, app)
		if err != nil {
			return err
		}
		emit(f)
	case "9b":
		f, err := locmps.Fig9(4096, app)
		if err != nil {
			return err
		}
		emit(f)
	case "10a":
		f, err := locmps.Fig10("ccsd", app)
		if err != nil {
			return err
		}
		emit(f)
	case "10b":
		f, err := locmps.Fig10("strassen", app)
		if err != nil {
			return err
		}
		emit(f)
	case "11":
		f, err := locmps.Fig11(app)
		if err != nil {
			return err
		}
		emit(f)
	case "extended":
		s := suite
		s.CCR = 0.1
		f, err := locmps.Extended(s)
		if err != nil {
			return err
		}
		emit(f)
	case "portfolio":
		s := suite
		s.CCR = 0.1
		f, err := locmps.PortfolioFig(s)
		if err != nil {
			return err
		}
		emit(f)
		tally, err := locmps.PortfolioWinners(s)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(tally))
		for n := range tally {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("// portfolio winners by (graph, P) cell:")
		for _, n := range names {
			fmt.Printf("//   %-12s %d\n", n, tally[n])
		}
	case "stats":
		s := suite
		s.CCR = 0.1
		f, err := locmps.SearchStatsFig(s)
		if err != nil {
			return err
		}
		emit(f)
	case "ablation":
		o := locmps.DefaultAblationOptions()
		o.Suite.Graphs = 4
		o.Procs = 16
		perf, times, err := locmps.AblateLookAhead(o, nil)
		if err != nil {
			return err
		}
		emit(perf)
		emit(times)
		perf, _, err = locmps.AblateCandidateWindow(o, nil)
		if err != nil {
			return err
		}
		emit(perf)
		mech, err := locmps.AblateMechanisms(o)
		if err != nil {
			return err
		}
		emit(mech)
		perf, _, err = locmps.AblateBlockSize(o, nil)
		if err != nil {
			return err
		}
		emit(perf)
	default:
		return fmt.Errorf("unknown figure id %q", id)
	}
	return emitErr
}
