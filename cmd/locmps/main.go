// Command locmps schedules a task graph (JSON) onto a simulated cluster
// with a chosen algorithm and reports the schedule.
//
// Usage:
//
//	locmps -graph g.json -algo LoC-MPS -procs 16 [-bandwidth 250e6]
//	       [-no-overlap] [-gantt] [-simulate] [-noise 0.1] [-dot out.dot]
//
// With -graph - (or no flag) the graph is read from stdin. The exit code
// is non-zero on any error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"locmps"
)

func main() {
	var (
		graphPath = flag.String("graph", "-", "task graph JSON file ('-' for stdin)")
		algoName  = flag.String("algo", "LoC-MPS", "algorithm: LoC-MPS, LoC-MPS-NoBF, iCASLB, CPR, CPA, TASK, DATA")
		procs     = flag.Int("procs", 16, "number of processors")
		bandwidth = flag.Float64("bandwidth", 250e6, "per-port bandwidth (bytes/s)")
		noOverlap = flag.Bool("no-overlap", false, "disallow overlap of computation and communication")
		gantt     = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		width     = flag.Int("gantt-width", 100, "Gantt chart width in characters")
		simulate  = flag.Bool("simulate", false, "execute the schedule in the discrete-event simulator")
		noise     = flag.Float64("noise", 0, "runtime noise amplitude for -simulate (0..1)")
		seed      = flag.Int64("seed", 1, "noise RNG seed")
		dotPath   = flag.String("dot", "", "also write the task graph as DOT to this file")
		jsonPath  = flag.String("json", "", "write the schedule as JSON to this file")
		csvPath   = flag.String("csv", "", "write the schedule as CSV to this file")
		svgPath   = flag.String("svg", "", "write a Gantt chart as SVG to this file")
		tracePath = flag.String("trace", "", "write a Chrome trace-event file (chrome://tracing)")
	)
	flag.Parse()
	if err := run(*graphPath, *algoName, *procs, *bandwidth, !*noOverlap, *gantt, *width,
		*simulate, *noise, *seed, *dotPath, *jsonPath, *csvPath, *svgPath, *tracePath); err != nil {
		fmt.Fprintln(os.Stderr, "locmps:", err)
		os.Exit(1)
	}
}

func run(graphPath, algoName string, procs int, bandwidth float64, overlap, gantt bool,
	width int, simulate bool, noise float64, seed int64, dotPath, jsonPath, csvPath, svgPath, tracePath string) error {

	var in io.Reader = os.Stdin
	if graphPath != "-" {
		f, err := os.Open(graphPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	tg, err := locmps.ReadTaskGraph(in)
	if err != nil {
		return err
	}
	if dotPath != "" {
		f, err := os.Create(dotPath)
		if err != nil {
			return err
		}
		if err := tg.WriteDOT(f, "taskgraph"); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	alg, err := locmps.SchedulerByName(algoName)
	if err != nil {
		return err
	}
	c := locmps.Cluster{P: procs, Bandwidth: bandwidth, Overlap: overlap}
	s, err := alg.Schedule(tg, c)
	if err != nil {
		return err
	}
	if err := s.Validate(tg); err != nil {
		return fmt.Errorf("internal error: produced schedule is invalid: %w", err)
	}
	fmt.Printf("algorithm:       %s\n", s.Algorithm)
	fmt.Printf("tasks:           %d\n", tg.N())
	fmt.Printf("processors:      %d (bandwidth %.3g B/s, overlap=%v)\n", c.P, c.Bandwidth, c.Overlap)
	fmt.Printf("makespan:        %.6g\n", s.Makespan)
	fmt.Printf("utilization:     %.1f%%\n", 100*s.Utilization(tg))
	fmt.Printf("scheduling time: %v\n", s.SchedulingTime)
	fmt.Println()
	fmt.Printf("%-4s %-16s %5s %12s %12s %s\n", "id", "task", "np", "start", "finish", "procs")
	for i, pl := range s.Placements {
		fmt.Printf("%-4d %-16s %5d %12.5g %12.5g %v\n",
			i, tg.Tasks[i].Name, pl.NP(), pl.Start, pl.Finish, pl.Procs)
	}
	if gantt {
		fmt.Println()
		fmt.Print(s.Gantt(tg, width))
	}
	if jsonPath != "" {
		if err := writeTo(jsonPath, func(f *os.File) error { return s.WriteJSON(f, tg) }); err != nil {
			return err
		}
	}
	if csvPath != "" {
		if err := writeTo(csvPath, func(f *os.File) error { return s.WriteCSV(f, tg) }); err != nil {
			return err
		}
	}
	if svgPath != "" {
		if err := writeTo(svgPath, func(f *os.File) error { return s.WriteSVG(f, tg) }); err != nil {
			return err
		}
	}
	if tracePath != "" {
		if err := writeTo(tracePath, func(f *os.File) error { return s.WriteChromeTrace(f, tg, 1e6) }); err != nil {
			return err
		}
	}
	if simulate {
		res, err := locmps.Execute(tg, s, locmps.SimOptions{Noise: noise, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println()
		fmt.Printf("simulated makespan: %.6g (noise %.2g, seed %d)\n", res.Makespan, noise, seed)
		fmt.Printf("network bytes:      %.6g\n", res.NetworkBytes)
		fmt.Printf("node-local bytes:   %.6g\n", res.LocalBytes)
		fmt.Printf("transfers:          %d\n", res.Transfers)
	}
	return nil
}

func writeTo(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
