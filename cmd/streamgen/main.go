// Command streamgen replays open-loop streaming scenarios through the
// arrival-driven rolling-horizon rescheduler (internal/stream) and
// records replay-rate and reschedule-latency SLOs in BENCH_stream.json,
// tracked across PRs alongside the scheduler-kernel numbers in
// BENCH_locmps.json and the serving numbers in BENCH_serve.json.
//
// Four cases:
//
//   - StreamSteadyPoisson: a steady Poisson arrival stream replayed in
//     incremental mode (pinned worker, table concatenation, warm memo)
//     and again in scratch mode (reference configuration on freshly
//     rebuilt unions). Both must produce bit-identical end-state
//     schedules; the headline figure is the search-time speedup, gated
//     >= 2x by cmd/benchjson -gate.
//   - StreamT0Batch: the same jobs with every arrival forced to t=0 —
//     the streamed end state must equal batch-scheduling the union
//     graph directly, bit for bit.
//   - StreamChurnFailures: a bursty stream with mid-run task failures
//     and cluster shrink/grow, every event's plan audit-checked with
//     full redistribution accounting.
//   - StreamUSLSweep: the arrival rate swept across a 16x range; the
//     achieved replay rate vs mean active-job load is fit to the
//     Universal Scalability Law (contention alpha, coherency beta,
//     saturation point).
//
// The file keeps a "baseline" (written once, preserved on reruns) and a
// "current" snapshot, the same convention as the sibling BENCH files;
// delete the file to re-baseline. With -smoke the tool writes nothing
// and instead asserts the streaming invariants on small scenarios —
// drains to an audited end state, replay-rate floor, bit-identical
// incremental-vs-scratch end states, t=0 batch equivalence, SWF replay
// — sized to stay fast under -race.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"locmps/internal/audit"
	"locmps/internal/core"
	"locmps/internal/model"
	"locmps/internal/stream"
)

// Result is one case's snapshot. Fields are per-case: only the metrics
// a case measures are set, the rest stay omitted.
type Result struct {
	Jobs      int `json:"jobs,omitempty"`
	Events    int `json:"events,omitempty"`
	Searches  int `json:"searches,omitempty"`
	FastPaths int `json:"fast_paths,omitempty"`
	Remaps    int `json:"remaps,omitempty"`
	Failures  int `json:"failures,omitempty"`
	Resizes   int `json:"resizes,omitempty"`

	MaxActiveTasks int `json:"max_active_tasks,omitempty"`
	ReplayedTasks  int `json:"replayed_tasks,omitempty"`

	Makespan float64 `json:"makespan,omitempty"`

	// ReplayRateEPS is events per wall-clock second over the whole
	// replay — the throughput SLO.
	ReplayRateEPS float64 `json:"replay_rate_eps,omitempty"`
	// ReschedP50Ns / ReschedP99Ns are per-search latency quantiles —
	// the tail SLO.
	ReschedP50Ns float64 `json:"resched_p50_ns,omitempty"`
	ReschedP99Ns float64 `json:"resched_p99_ns,omitempty"`

	// IncrementalSearchNs and ScratchSearchNs sum real search time per
	// mode; SpeedupX is their ratio, valid only when EndBitIdentical.
	IncrementalSearchNs float64 `json:"incremental_search_ns,omitempty"`
	ScratchSearchNs     float64 `json:"scratch_search_ns,omitempty"`
	SpeedupX            float64 `json:"speedup_x,omitempty"`
	EndBitIdentical     bool    `json:"end_bit_identical,omitempty"`

	T0Match    bool `json:"t0_match,omitempty"`
	AuditClean bool `json:"audit_clean,omitempty"`

	// USL sweep: offered rates, measured mean active-job loads and
	// achieved replay rates, plus the fitted law. USLPeak is omitted
	// when the fit finds no coherency limit (unbounded peak).
	Lambdas  []float64 `json:"lambdas,omitempty"`
	Loads    []float64 `json:"loads,omitempty"`
	Rates    []float64 `json:"rates,omitempty"`
	USLGamma float64   `json:"usl_gamma,omitempty"`
	USLAlpha float64   `json:"usl_alpha,omitempty"`
	USLBeta  float64   `json:"usl_beta,omitempty"`
	USLPeak  float64   `json:"usl_peak,omitempty"`
}

// File is the on-disk shape of BENCH_stream.json.
type File struct {
	Note     string            `json:"note"`
	CPUs     int               `json:"cpus"`
	Baseline map[string]Result `json:"baseline"`
	Current  map[string]Result `json:"current"`
}

func main() {
	path := flag.String("o", "BENCH_stream.json", "output file")
	smoke := flag.Bool("smoke", false, "run fast invariant checks only; write no file")
	reps := flag.Int("reps", 3, "repetitions per timed replay (best kept)")
	flag.Parse()
	var err error
	if *smoke {
		err = smokeChecks()
	} else {
		err = run(*path, *reps)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamgen:", err)
		os.Exit(1)
	}
}

// steadyCluster hosts every scenario; the resize events in the churn
// case shrink inside it. 64 processors puts the workload where the
// placement runs — whose cost scales with P — dominate the shared
// critical-path analytics, so the incremental accelerations (memo,
// resume, warm redistribution cache) show as wall-clock, not just as
// saved LoCBS runs.
var steadyCluster = model.Cluster{P: 64, Bandwidth: 12.5e6, Overlap: true}

// steadyJobs is the steady-state Poisson workload: enough overlap that
// the rolling horizon holds several jobs at once, enough tasks per job
// that searches do real work.
func steadyJobs() ([]stream.Job, error) {
	return stream.PoissonJobs(stream.PoissonOpts{
		Jobs: 10, Rate: 0.03, MinTasks: 14, MaxTasks: 20, Seed: 7,
	})
}

// churnScenario is the failure/shrink/grow stress: bursty arrivals,
// two failure probes per job, a shrink to half capacity and a grow
// back.
func churnScenario() (stream.Config, error) {
	jobs, err := stream.PoissonJobs(stream.PoissonOpts{
		Jobs: 8, Rate: 0.03, Burst: 3, BurstSize: 2,
		MinTasks: 6, MaxTasks: 10, Seed: 11,
	})
	if err != nil {
		return stream.Config{}, err
	}
	cfg := stream.Config{Cluster: steadyCluster, Jobs: jobs}
	for i, j := range jobs {
		cfg.Failures = append(cfg.Failures,
			stream.Fail{Time: j.Arrival + 10, Job: i},
			stream.Fail{Time: j.Arrival + 40, Job: i})
	}
	cfg.Resizes = []stream.Resize{
		{Time: jobs[2].Arrival + 5, Procs: steadyCluster.P / 2},
		{Time: jobs[5].Arrival + 5, Procs: steadyCluster.P},
	}
	return cfg, nil
}

// replayReps replays cfg reps times, forcing a collection before each
// replay so GC debt accumulated by one repetition is not billed to the
// next one's search latencies.
func replayReps(cfg stream.Config, reps int) ([]*stream.Result, error) {
	out := make([]*stream.Result, 0, reps)
	for i := 0; i < reps; i++ {
		runtime.GC()
		res, err := stream.Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// minSearchLats reduces repetitions to per-event minima: the replayed
// event sequence is deterministic, so event i is the same reschedule in
// every repetition and its fastest observation is the measurement (the
// loadgen best-of-reps convention, applied per event instead of per
// run). Returns the search events' latencies in event order.
func minSearchLats(results []*stream.Result) []time.Duration {
	var lats []time.Duration
	for i := range results[0].Events {
		e := results[0].Events[i]
		if e.FastPath || e.Remap {
			continue
		}
		min := e.Elapsed
		for _, r := range results[1:] {
			if r.Events[i].Elapsed < min {
				min = r.Events[i].Elapsed
			}
		}
		lats = append(lats, min)
	}
	return lats
}

func sumDurations(lats []time.Duration) time.Duration {
	var total time.Duration
	for _, l := range lats {
		total += l
	}
	return total
}

// quantile is the nearest-rank quantile of lats (q in percent).
func quantile(lats []time.Duration, q int) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	cp := append([]time.Duration(nil), lats...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	i := (len(cp)*q + 99) / 100
	if i < 1 {
		i = 1
	}
	if i > len(cp) {
		i = len(cp)
	}
	return cp[i-1]
}

// sameEnd reports whether two end states are bit-identical schedules
// over the same union graph.
func sameEnd(a, b *stream.Result) bool {
	if a.End == nil || b.End == nil {
		return false
	}
	return audit.DiffSchedules(a.EndGraph, a.End, b.End) == ""
}

func run(path string, reps int) error {
	out := File{
		Note:     "Open-loop streaming scheduler benchmarks (Poisson arrivals, synthetic DAG jobs, seed 7/11). Baseline is preserved across runs; delete this file to re-baseline. speedup_x is incremental (pinned worker, concatenated tables) vs scratch (reference configuration, rebuilt unions) at bit-identical end states; timed replays keep the best of -reps repetitions.",
		CPUs:     runtime.NumCPU(),
		Current:  map[string]Result{},
		Baseline: map[string]Result{},
	}
	prev, err := load(path)
	if err != nil {
		return err
	}
	if prev != nil && len(prev.Baseline) > 0 {
		out.Baseline = prev.Baseline
		if prev.Note != "" {
			out.Note = prev.Note
		}
	}

	if r, err := steadyCase(reps); err != nil {
		return fmt.Errorf("StreamSteadyPoisson: %w", err)
	} else {
		out.Current["StreamSteadyPoisson"] = r
		fmt.Printf("%-24s %4d events  %8.0f events/s  p50 %v p99 %v  speedup %.2fx (inc %v vs scratch %v)  bit-identical=%v\n",
			"StreamSteadyPoisson", r.Events, r.ReplayRateEPS,
			time.Duration(r.ReschedP50Ns), time.Duration(r.ReschedP99Ns),
			r.SpeedupX, time.Duration(r.IncrementalSearchNs), time.Duration(r.ScratchSearchNs),
			r.EndBitIdentical)
	}

	if r, err := t0Case(); err != nil {
		return fmt.Errorf("StreamT0Batch: %w", err)
	} else {
		out.Current["StreamT0Batch"] = r
		fmt.Printf("%-24s %4d events  makespan %.6g  t0_match=%v\n",
			"StreamT0Batch", r.Events, r.Makespan, r.T0Match)
	}

	if r, err := churnCase(); err != nil {
		return fmt.Errorf("StreamChurnFailures: %w", err)
	} else {
		out.Current["StreamChurnFailures"] = r
		fmt.Printf("%-24s %4d events  %d failures %d resizes %d replayed tasks  audit_clean=%v\n",
			"StreamChurnFailures", r.Events, r.Failures, r.Resizes, r.ReplayedTasks, r.AuditClean)
	}

	if r, err := uslCase(); err != nil {
		return fmt.Errorf("StreamUSLSweep: %w", err)
	} else {
		out.Current["StreamUSLSweep"] = r
		peak := "unbounded"
		if r.USLPeak > 0 {
			peak = fmt.Sprintf("%.1f jobs", r.USLPeak)
		}
		fmt.Printf("%-24s %d rate points  gamma %.1f events/s  alpha %.4f beta %.5f  peak %s\n",
			"StreamUSLSweep", len(r.Rates), r.USLGamma, r.USLAlpha, r.USLBeta, peak)
	}

	justBaselined := map[string]bool{}
	if len(out.Baseline) == 0 {
		out.Baseline = out.Current
		for name := range out.Current {
			justBaselined[name] = true
		}
		fmt.Println("no existing baseline: current run recorded as baseline")
	} else {
		for name, cur := range out.Current {
			if _, ok := out.Baseline[name]; !ok {
				out.Baseline[name] = cur
				justBaselined[name] = true
				fmt.Printf("%-24s new case: current run backfilled into baseline\n", name)
			}
		}
	}
	warnStale(&out, justBaselined)

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// steadyCase measures the steady Poisson stream in both modes. The
// timed replays skip the per-plan audit (it is not rescheduling work
// and both modes would pay it equally); the bit-identity check between
// the two end states is the correctness evidence here, and the churn
// case audits every event.
func steadyCase(reps int) (Result, error) {
	// A generous GC target keeps collections out of the timed searches;
	// the per-replay runtime.GC() in replayReps bounds the heap anyway.
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	jobs, err := steadyJobs()
	if err != nil {
		return Result{}, err
	}
	cfg := stream.Config{Cluster: steadyCluster, Jobs: jobs, SkipAudit: true}
	incs, err := replayReps(cfg, reps)
	if err != nil {
		return Result{}, err
	}
	cfg.Scratch = true
	scrs, err := replayReps(cfg, reps)
	if err != nil {
		return Result{}, fmt.Errorf("scratch replay: %w", err)
	}
	if !sameEnd(incs[0], scrs[0]) {
		return Result{}, fmt.Errorf("incremental and scratch end states differ — speedup would be meaningless")
	}
	inc := incs[0]
	incLats := minSearchLats(incs)
	scrLats := minSearchLats(scrs)
	incNs, scrNs := sumDurations(incLats), sumDurations(scrLats)
	wall := inc.Wall
	for _, r := range incs[1:] {
		if r.Wall < wall {
			wall = r.Wall
		}
	}
	r := Result{
		Jobs:                len(jobs),
		Events:              len(inc.Events),
		Searches:            inc.Searches,
		FastPaths:           inc.ResumedRuns,
		Remaps:              inc.Remaps,
		MaxActiveTasks:      inc.MaxActiveTasks,
		ReplayedTasks:       inc.Stats.ReplayedTasks,
		Makespan:            inc.End.Makespan,
		ReplayRateEPS:       float64(len(inc.Events)) / wall.Seconds(),
		ReschedP50Ns:        float64(quantile(incLats, 50)),
		ReschedP99Ns:        float64(quantile(incLats, 99)),
		IncrementalSearchNs: float64(incNs),
		ScratchSearchNs:     float64(scrNs),
		EndBitIdentical:     true,
	}
	if incNs > 0 {
		r.SpeedupX = float64(scrNs) / float64(incNs)
	}
	return r, nil
}

// t0Case forces every arrival to t=0 and checks the streamed end state
// against a direct batch schedule of the union graph.
func t0Case() (Result, error) {
	jobs, err := steadyJobs()
	if err != nil {
		return Result{}, err
	}
	for i := range jobs {
		jobs[i].Arrival = 0
	}
	res, err := stream.Run(stream.Config{Cluster: steadyCluster, Jobs: jobs})
	if err != nil {
		return Result{}, err
	}
	union, err := stream.UnionGraph(jobs)
	if err != nil {
		return Result{}, err
	}
	batch, err := core.New().Schedule(union, steadyCluster)
	if err != nil {
		return Result{}, err
	}
	if diff := audit.DiffSchedules(res.EndGraph, res.End, batch); diff != "" {
		return Result{}, fmt.Errorf("stream end state differs from batch: %s", diff)
	}
	return Result{
		Jobs:          len(jobs),
		Events:        len(res.Events),
		Makespan:      res.End.Makespan,
		ReplayRateEPS: float64(len(res.Events)) / res.Wall.Seconds(),
		T0Match:       true,
	}, nil
}

// churnCase replays the failure/shrink/grow scenario with the per-event
// audit on; stream.Run fails on the first unsound plan, so finishing at
// all is the audit-clean evidence.
func churnCase() (Result, error) {
	cfg, err := churnScenario()
	if err != nil {
		return Result{}, err
	}
	res, err := stream.Run(cfg)
	if err != nil {
		return Result{}, err
	}
	r := Result{
		Jobs:           len(cfg.Jobs),
		Events:         len(res.Events),
		Searches:       res.Searches,
		FastPaths:      res.ResumedRuns,
		Remaps:         res.Remaps,
		MaxActiveTasks: res.MaxActiveTasks,
		ReplayedTasks:  res.Stats.ReplayedTasks,
		Makespan:       res.End.Makespan,
		ReplayRateEPS:  float64(len(res.Events)) / res.Wall.Seconds(),
		AuditClean:     true,
	}
	for _, e := range res.Events {
		r.Failures += e.Failures
		if e.Resized {
			r.Resizes++
		}
	}
	if r.Failures == 0 {
		return Result{}, fmt.Errorf("no failure probe landed — scenario lost its stress")
	}
	return r, nil
}

// uslCase sweeps the offered arrival rate across a 16x range and fits
// achieved replay rate vs mean active-job load to the USL. The fit can
// legitimately find no coherency limit on a small host; only degenerate
// inputs are errors.
func uslCase() (Result, error) {
	base := 0.01
	r := Result{}
	for _, mult := range []float64{1, 2, 4, 8, 16} {
		jobs, err := stream.PoissonJobs(stream.PoissonOpts{
			Jobs: 8, Rate: base * mult, MinTasks: 8, MaxTasks: 12, Seed: 7,
		})
		if err != nil {
			return Result{}, err
		}
		res, err := stream.Run(stream.Config{Cluster: steadyCluster, Jobs: jobs, SkipAudit: true})
		if err != nil {
			return Result{}, err
		}
		active := 0
		for _, e := range res.Events {
			active += e.ActiveJobs
		}
		r.Lambdas = append(r.Lambdas, base*mult)
		r.Loads = append(r.Loads, float64(active)/float64(len(res.Events)))
		r.Rates = append(r.Rates, float64(len(res.Events))/res.Wall.Seconds())
	}
	fit, err := stream.FitUSL(r.Loads, r.Rates)
	if err != nil {
		// A noisy sweep on a loaded host can defeat the least-squares
		// fit; the rate points are still the record.
		fmt.Fprintf(os.Stderr, "streamgen: warning: USL fit failed: %v\n", err)
		return r, nil
	}
	r.USLGamma, r.USLAlpha, r.USLBeta = fit.Gamma, fit.Alpha, fit.Beta
	if !math.IsInf(fit.Peak, 1) {
		r.USLPeak = fit.Peak
	}
	return r, nil
}

// smokeRateFloor is the minimum events/sec a small smoke replay must
// sustain; deliberately far below real capacity so only a hang or a
// pathological slowdown trips it, even under -race.
const smokeRateFloor = 5.0

// smokeSWF is a synthetic four-job trace in Standard Workload Format
// (fields: id submit wait run alloc cpu mem reqProcs reqTime ...).
const smokeSWF = `; streamgen smoke trace
1 0   0 60  2 -1 -1 2 60  -1 1 1 1 1 1 -1 -1 -1
2 15  0 90  4 -1 -1 4 90  -1 1 1 1 1 1 -1 -1 -1
3 40  0 45  8 -1 -1 8 45  -1 1 1 1 1 1 -1 -1 -1
4 70  0 120 4 -1 -1 4 120 -1 1 1 1 1 1 -1 -1 -1
`

// smokeChecks asserts the streaming invariants on scenarios sized for
// -race: the churn scenario drains audit-clean above the rate floor,
// incremental equals scratch bit for bit, a t=0 stream equals batch,
// and an SWF replay drains audit-clean.
func smokeChecks() error {
	jobs, err := stream.PoissonJobs(stream.PoissonOpts{
		Jobs: 5, Rate: 0.02, MinTasks: 4, MaxTasks: 7, Seed: 7,
	})
	if err != nil {
		return err
	}
	cfg := stream.Config{Cluster: steadyCluster, Jobs: jobs}
	cfg.Failures = []stream.Fail{{Time: jobs[1].Arrival + 10, Job: 1}, {Time: jobs[3].Arrival + 10, Job: 3}}
	cfg.Resizes = []stream.Resize{{Time: jobs[2].Arrival + 5, Procs: steadyCluster.P / 2}}

	inc, err := stream.Run(cfg)
	if err != nil {
		return fmt.Errorf("poisson replay: %w", err)
	}
	var errs []string
	if inc.End == nil {
		errs = append(errs, "poisson replay did not drain to an end state")
	}
	if rate := float64(len(inc.Events)) / inc.Wall.Seconds(); rate < smokeRateFloor {
		errs = append(errs, fmt.Sprintf("replay rate %.1f events/s below the %.0f floor", rate, smokeRateFloor))
	}
	if inc.ResumedRuns == 0 {
		errs = append(errs, "no empty-delta fast path taken — the deterministic-completion path is dead")
	}
	scfg := cfg
	scfg.Scratch = true
	scr, err := stream.Run(scfg)
	if err != nil {
		return fmt.Errorf("scratch replay: %w", err)
	}
	if !sameEnd(inc, scr) {
		errs = append(errs, "incremental and scratch end states differ")
	}

	t0 := append([]stream.Job(nil), jobs...)
	for i := range t0 {
		t0[i].Arrival = 0
	}
	t0res, err := stream.Run(stream.Config{Cluster: steadyCluster, Jobs: t0})
	if err != nil {
		return fmt.Errorf("t=0 replay: %w", err)
	}
	union, err := stream.UnionGraph(t0)
	if err != nil {
		return err
	}
	batch, err := core.New().Schedule(union, steadyCluster)
	if err != nil {
		return err
	}
	if diff := audit.DiffSchedules(t0res.EndGraph, t0res.End, batch); diff != "" {
		errs = append(errs, fmt.Sprintf("t=0 stream differs from batch: %s", diff))
	}

	swfJobs, err := stream.SWFJobs(strings.NewReader(smokeSWF), steadyCluster.P, stream.SWFOpts{
		MinTasks: 3, MaxTasks: 6, TimeScale: 0.5, Seed: 4,
	})
	if err != nil {
		return fmt.Errorf("SWF parse: %w", err)
	}
	swfRes, err := stream.Run(stream.Config{Cluster: steadyCluster, Jobs: swfJobs})
	if err != nil {
		return fmt.Errorf("SWF replay: %w", err)
	}
	if swfRes.End == nil || len(swfRes.JobCompletion) != len(swfJobs) {
		errs = append(errs, "SWF replay did not complete every job")
	}

	if len(errs) > 0 {
		return fmt.Errorf("smoke checks failed:\n  %s", strings.Join(errs, "\n  "))
	}
	fmt.Printf("smoke checks passed: poisson %d events (%d fast paths), scratch bit-identical, t=0 == batch, SWF %d jobs drained\n",
		len(inc.Events), inc.ResumedRuns, len(swfJobs))
	return nil
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// warnStale flags baseline==current pairs that were not just backfilled
// this run: a byte-identical pair from an older run means the baseline
// was never re-measured.
func warnStale(f *File, justBaselined map[string]bool) {
	for name, cur := range f.Current {
		if justBaselined[name] {
			continue
		}
		base, ok := f.Baseline[name]
		if !ok {
			continue
		}
		bj, err1 := json.Marshal(base)
		cj, err2 := json.Marshal(cur)
		if err1 == nil && err2 == nil && bytes.Equal(bj, cj) {
			fmt.Fprintf(os.Stderr,
				"streamgen: warning: %s baseline == current byte-for-byte (stale backfill); delete %s to re-baseline\n",
				name, "BENCH_stream.json")
		}
	}
}
