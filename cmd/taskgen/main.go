// Command taskgen generates synthetic mixed-parallel task graphs with the
// paper's §IV.A knobs and writes them as JSON (consumable by cmd/locmps).
//
// Usage:
//
//	taskgen -tasks 30 -ccr 0.1 -amax 64 -sigma 1 -seed 7 > graph.json
package main

import (
	"flag"
	"fmt"
	"os"

	"locmps"
)

func main() {
	var (
		tasks     = flag.Int("tasks", 30, "number of tasks")
		degree    = flag.Float64("degree", 4, "average in/out degree")
		meanWork  = flag.Float64("work", 30, "mean uniprocessor execution time")
		ccr       = flag.Float64("ccr", 0, "communication-to-computation ratio")
		amax      = flag.Float64("amax", 64, "Downey Amax (average parallelism upper bound)")
		sigma     = flag.Float64("sigma", 1, "Downey sigma (variation of parallelism)")
		bandwidth = flag.Float64("bandwidth", 12.5e6, "network bandwidth (bytes/s) used to size volumes")
		seed      = flag.Int64("seed", 1, "RNG seed")
		out       = flag.String("o", "-", "output file ('-' for stdout)")
		sampleP   = flag.Int("sample-procs", 128, "processor count up to which table (non-analytic) speedup profiles are sampled when serializing; must be >= 1")
		stat      = flag.Bool("stats", false, "print graph statistics to stderr")
	)
	flag.Parse()
	if *sampleP < 1 {
		fmt.Fprintf(os.Stderr, "taskgen: -sample-procs must be >= 1, got %d\n", *sampleP)
		os.Exit(1)
	}

	p := locmps.SynthParams{
		Tasks:     *tasks,
		AvgDegree: *degree,
		MeanWork:  *meanWork,
		CCR:       *ccr,
		AMax:      *amax,
		Sigma:     *sigma,
		Bandwidth: *bandwidth,
		Seed:      *seed,
	}
	tg, err := locmps.Synthetic(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "taskgen:", err)
		os.Exit(1)
	}
	if *stat {
		st, err := locmps.GraphStatistics(tg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "taskgen:", err)
			os.Exit(1)
		}
		fmt.Fprint(os.Stderr, st)
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "taskgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tg.WriteJSON(w, *sampleP); err != nil {
		fmt.Fprintln(os.Stderr, "taskgen:", err)
		os.Exit(1)
	}
}
