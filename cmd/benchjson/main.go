// Command benchjson runs the mid-scale scheduler benchmarks and records
// them in BENCH_locmps.json so the performance trajectory is tracked across
// PRs. Each entry holds ns/op, B/op, allocs/op, the scheduled makespan and
// the makespan ratio against the CPR baseline (a quality check: speedups
// must not change what is scheduled).
//
// The file keeps two snapshots: "baseline" (written once, preserved on
// every rerun) and "current" (refreshed each run), plus the derived
// speedups. Delete the file to re-baseline.
//
// Usage:
//
//	go run ./cmd/benchjson            # update BENCH_locmps.json in place
//	go run ./cmd/benchjson -o out.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"locmps"
)

// Result is one benchmark snapshot.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Makespan is the scheduled makespan of the benchmark instance and
	// RatioVsCPR its ratio to CPR's makespan — both pure functions of the
	// input, so a change here means the optimization changed the schedule.
	Makespan   float64 `json:"makespan"`
	RatioVsCPR float64 `json:"makespan_ratio_vs_cpr"`
}

// File is the on-disk layout of BENCH_locmps.json.
type File struct {
	Note     string             `json:"note,omitempty"`
	Baseline map[string]Result  `json:"baseline"`
	Current  map[string]Result  `json:"current"`
	SpeedupX map[string]Speedup `json:"speedup_vs_baseline"`
}

// Speedup is baseline/current for the two tracked dimensions.
type Speedup struct {
	Ns     float64 `json:"ns"`
	Allocs float64 `json:"allocs"`
}

type benchCase struct {
	name         string
	tasks, procs int
}

var cases = []benchCase{
	{"BenchmarkLoCMPS30Tasks16Procs", 30, 16},
	{"BenchmarkLoCMPS50Tasks64Procs", 50, 64},
}

func main() {
	path := flag.String("o", "BENCH_locmps.json", "output file (baseline inside is preserved)")
	flag.Parse()
	if err := run(*path); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	out := File{
		Note:     "Mid-scale LoC-MPS scheduler benchmarks (synthetic graphs, CCR=0.1, seed 7). Baseline is preserved across runs; delete this file to re-baseline.",
		Current:  map[string]Result{},
		SpeedupX: map[string]Speedup{},
	}
	if prev, err := load(path); err != nil {
		return err
	} else if prev != nil && len(prev.Baseline) > 0 {
		out.Baseline = prev.Baseline
		if prev.Note != "" {
			out.Note = prev.Note
		}
	}

	for _, cs := range cases {
		r, err := measure(cs)
		if err != nil {
			return fmt.Errorf("%s: %w", cs.name, err)
		}
		out.Current[cs.name] = r
		fmt.Printf("%-34s %14.0f ns/op %12.0f B/op %10.0f allocs/op  makespan %.6g (%.3fx CPR)\n",
			cs.name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Makespan, r.RatioVsCPR)
	}
	if out.Baseline == nil {
		out.Baseline = out.Current
		fmt.Println("no existing baseline: current run recorded as baseline")
	}
	for name, cur := range out.Current {
		if base, ok := out.Baseline[name]; ok && cur.NsPerOp > 0 && cur.AllocsPerOp > 0 {
			out.SpeedupX[name] = Speedup{
				Ns:     base.NsPerOp / cur.NsPerOp,
				Allocs: base.AllocsPerOp / cur.AllocsPerOp,
			}
			fmt.Printf("%-34s %6.2fx ns/op %6.2fx allocs/op vs baseline\n",
				name, out.SpeedupX[name].Ns, out.SpeedupX[name].Allocs)
		}
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("existing %s is not valid: %w", path, err)
	}
	return &f, nil
}

// measure builds the same instance as the bench_test.go benchmark of the
// same name and times LoC-MPS on it.
func measure(cs benchCase) (Result, error) {
	p := locmps.DefaultSynthParams()
	p.Tasks = cs.tasks
	p.CCR = 0.1
	p.Seed = 7
	tg, err := locmps.Synthetic(p)
	if err != nil {
		return Result{}, err
	}
	c := locmps.Cluster{P: cs.procs, Bandwidth: 12.5e6, Overlap: true}

	s, err := locmps.NewLoCMPS().Schedule(tg, c)
	if err != nil {
		return Result{}, err
	}
	cpr, err := locmps.NewCPR().Schedule(tg, c)
	if err != nil {
		return Result{}, err
	}

	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := locmps.NewLoCMPS().Schedule(tg, c); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return Result{}, benchErr
	}
	return Result{
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
		Makespan:    s.Makespan,
		RatioVsCPR:  s.Makespan / cpr.Makespan,
	}, nil
}
