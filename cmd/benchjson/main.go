// Command benchjson runs the mid-scale scheduler benchmarks and records
// them in BENCH_locmps.json so the performance trajectory is tracked across
// PRs. Each entry holds ns/op, B/op, allocs/op, the scheduled makespan, the
// makespan ratio against the CPR baseline (a quality check: speedups must
// not change what is scheduled) and a search_stats snapshot of the LoC-MPS
// search layer (look-ahead steps, engine runs, allocation-memo hit rate,
// speculation accounting).
//
// The file keeps two snapshots: "baseline" (written once, preserved on
// every rerun) and "current" (refreshed each run), plus the derived
// speedups. Delete the file to re-baseline. Cases added after the baseline
// was recorded are backfilled into it on first measurement.
//
// Usage:
//
//	go run ./cmd/benchjson            # update BENCH_locmps.json in place
//	go run ./cmd/benchjson -o out.json
//	go run ./cmd/benchjson -cpuprofile cpu.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"

	"locmps"
)

// Result is one benchmark snapshot.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Makespan is the scheduled makespan of the benchmark instance and
	// RatioVsCPR its ratio to CPR's makespan — both pure functions of the
	// input, so a change here means the optimization changed the schedule.
	Makespan   float64 `json:"makespan"`
	RatioVsCPR float64 `json:"makespan_ratio_vs_cpr"`
	// Search records what the LoC-MPS search layer did on one run of this
	// instance. Absent in snapshots recorded before the memo existed.
	Search *SearchSnapshot `json:"search_stats,omitempty"`
}

// SearchSnapshot is the recorded slice of locmps.RunMetrics.
type SearchSnapshot struct {
	OuterIterations  int     `json:"outer_iterations"`
	LookAheadSteps   int     `json:"lookahead_steps"`
	LoCBSRuns        int     `json:"locbs_runs"`
	CacheHits        int     `json:"cache_hits"`
	CacheMisses      int     `json:"cache_misses"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	SpeculativeRuns  int     `json:"speculative_runs"`
	SpeculativeWaste int     `json:"speculative_waste"`
}

func snapshot(m locmps.RunMetrics) *SearchSnapshot {
	return &SearchSnapshot{
		OuterIterations:  m.OuterIterations,
		LookAheadSteps:   m.LookAheadSteps,
		LoCBSRuns:        m.LoCBSRuns,
		CacheHits:        m.CacheHits,
		CacheMisses:      m.CacheMisses,
		CacheHitRate:     m.CacheHitRate(),
		SpeculativeRuns:  m.SpeculativeRuns,
		SpeculativeWaste: m.SpeculativeWaste,
	}
}

// File is the on-disk layout of BENCH_locmps.json.
type File struct {
	Note     string             `json:"note,omitempty"`
	Baseline map[string]Result  `json:"baseline"`
	Current  map[string]Result  `json:"current"`
	SpeedupX map[string]Speedup `json:"speedup_vs_baseline"`
}

// Speedup is baseline/current for the two tracked dimensions.
type Speedup struct {
	Ns     float64 `json:"ns"`
	Allocs float64 `json:"allocs"`
}

type benchCase struct {
	name         string
	tasks, procs int
}

var cases = []benchCase{
	{"BenchmarkLoCMPS30Tasks16Procs", 30, 16},
	{"BenchmarkLoCMPS50Tasks64Procs", 50, 64},
	{"BenchmarkLoCMPS100Tasks128Procs", 100, 128},
}

func main() {
	path := flag.String("o", "BENCH_locmps.json", "output file (baseline inside is preserved)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the runs to this file")
	flag.Parse()
	if err := profiled(*cpuprofile, *memprofile, func() error { return run(*path) }); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// profiled wraps fn with optional CPU and heap profiling; the heap profile
// is taken after a GC so it reflects live retention.
func profiled(cpuPath, memPath string, fn func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := fn(); err != nil {
		return err
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

func run(path string) error {
	out := File{
		Note:     "Mid-scale LoC-MPS scheduler benchmarks (synthetic graphs, CCR=0.1, seed 7). Baseline is preserved across runs; delete this file to re-baseline.",
		Current:  map[string]Result{},
		SpeedupX: map[string]Speedup{},
	}
	if prev, err := load(path); err != nil {
		return err
	} else if prev != nil && len(prev.Baseline) > 0 {
		out.Baseline = prev.Baseline
		if prev.Note != "" {
			out.Note = prev.Note
		}
	}

	for _, cs := range cases {
		r, err := measure(cs)
		if err != nil {
			return fmt.Errorf("%s: %w", cs.name, err)
		}
		out.Current[cs.name] = r
		fmt.Printf("%-34s %14.0f ns/op %12.0f B/op %10.0f allocs/op  makespan %.6g (%.3fx CPR)\n",
			cs.name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Makespan, r.RatioVsCPR)
		if s := r.Search; s != nil {
			fmt.Printf("%-34s %14d locbs %12d hits %10d misses  %.1f%% hit rate, spec %d/%d wasted\n",
				"", s.LoCBSRuns, s.CacheHits, s.CacheMisses, 100*s.CacheHitRate,
				s.SpeculativeWaste, s.SpeculativeRuns)
		}
	}
	if out.Baseline == nil {
		out.Baseline = out.Current
		fmt.Println("no existing baseline: current run recorded as baseline")
	} else {
		// Cases added after the baseline was first recorded start their
		// trajectory at this run.
		for name, cur := range out.Current {
			if _, ok := out.Baseline[name]; !ok {
				out.Baseline[name] = cur
				fmt.Printf("%-34s new case: current run backfilled into baseline\n", name)
			}
		}
	}
	for name, cur := range out.Current {
		if base, ok := out.Baseline[name]; ok && cur.NsPerOp > 0 && cur.AllocsPerOp > 0 {
			out.SpeedupX[name] = Speedup{
				Ns:     base.NsPerOp / cur.NsPerOp,
				Allocs: base.AllocsPerOp / cur.AllocsPerOp,
			}
			fmt.Printf("%-34s %6.2fx ns/op %6.2fx allocs/op vs baseline\n",
				name, out.SpeedupX[name].Ns, out.SpeedupX[name].Allocs)
		}
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("existing %s is not valid: %w", path, err)
	}
	return &f, nil
}

// measure builds the same instance as the bench_test.go benchmark of the
// same name and times LoC-MPS on it.
func measure(cs benchCase) (Result, error) {
	p := locmps.DefaultSynthParams()
	p.Tasks = cs.tasks
	p.CCR = 0.1
	p.Seed = 7
	tg, err := locmps.Synthetic(p)
	if err != nil {
		return Result{}, err
	}
	c := locmps.Cluster{P: cs.procs, Bandwidth: 12.5e6, Overlap: true}

	alg := locmps.NewLoCMPS()
	s, err := alg.Schedule(tg, c)
	if err != nil {
		return Result{}, err
	}
	cpr, err := locmps.NewCPR().Schedule(tg, c)
	if err != nil {
		return Result{}, err
	}

	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := locmps.NewLoCMPS().Schedule(tg, c); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return Result{}, benchErr
	}
	res := Result{
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
		Makespan:    s.Makespan,
		RatioVsCPR:  s.Makespan / cpr.Makespan,
	}
	if m, ok := locmps.SearchMetrics(alg); ok {
		res.Search = snapshot(m)
	}
	return res, nil
}
