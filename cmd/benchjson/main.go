// Command benchjson runs the mid-scale scheduler benchmarks and records
// them in BENCH_locmps.json so the performance trajectory is tracked across
// PRs. Each entry holds ns/op, B/op, allocs/op, the scheduled makespan, the
// makespan ratio against the CPR baseline (a quality check: speedups must
// not change what is scheduled) and a search_stats snapshot of the LoC-MPS
// search layer (look-ahead steps, engine runs, allocation-memo hit rate,
// speculation accounting).
//
// The file keeps two snapshots: "baseline" (written once, preserved on
// every rerun) and "current" (refreshed each run), plus the derived
// speedups. Delete the file to re-baseline everything, or pass
// -rebaseline with a comma-separated list of case names to re-measure just
// those baselines using the reference scheduler (NewLoCMPSReference: memo,
// resume and speculation disabled), so the recorded speedup compares the
// optimized engine against the same engine with its accelerations off.
//
// A case whose baseline and current entries are byte-identical carries no
// information (its speedup is a vacuous 1.0x — the backfill of a case added
// after the baseline was first recorded); the tool warns about every such
// case so stale baselines do not masquerade as "no improvement".
//
// To suppress scheduler jitter each case is measured -reps times (default
// 3) and the fastest repetition is recorded, the same convention as
// benchstat's min column.
//
// Usage:
//
//	go run ./cmd/benchjson            # update BENCH_locmps.json in place
//	go run ./cmd/benchjson -o out.json
//	go run ./cmd/benchjson -cpuprofile cpu.pprof
//	go run ./cmd/benchjson -rebaseline BenchmarkLoCMPS100Tasks128Procs
//	go run ./cmd/benchjson -gate      # fail if ns/op regressed vs the committed file
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"testing"
	"time"

	"locmps"
	"locmps/internal/core"
)

// Result is one benchmark snapshot.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Makespan is the scheduled makespan of the benchmark instance and
	// RatioVsCPR its ratio to CPR's makespan — both pure functions of the
	// input, so a change here means the optimization changed the schedule.
	Makespan   float64 `json:"makespan"`
	RatioVsCPR float64 `json:"makespan_ratio_vs_cpr"`
	// Search records what the LoC-MPS search layer did on one run of this
	// instance. Absent in snapshots recorded before the memo existed.
	Search *SearchSnapshot `json:"search_stats,omitempty"`
}

// SearchSnapshot is the recorded slice of locmps.RunMetrics.
type SearchSnapshot struct {
	OuterIterations  int     `json:"outer_iterations"`
	LookAheadSteps   int     `json:"lookahead_steps"`
	LoCBSRuns        int     `json:"locbs_runs"`
	CacheHits        int     `json:"cache_hits"`
	CacheMisses      int     `json:"cache_misses"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	WindowRuns       int     `json:"window_runs"`
	SpeculativeRuns  int     `json:"speculative_runs"`
	SpeculativeWaste int     `json:"speculative_waste"`
	// Incremental-placement accounting: placement runs that resumed from a
	// prefix checkpoint, task placements replayed from the checkpoint trace
	// and traced steps rolled back at the divergence point.
	ResumedRuns   int     `json:"resumed_runs"`
	ReplayedTasks int     `json:"replayed_tasks"`
	RollbackDepth int     `json:"rollback_depth"`
	ReplayRate    float64 `json:"replay_rate"`
	// Intra-run parallelism accounting: speculative window runs aborted by
	// the partial lower bound (and the task placements those aborts
	// skipped), plus the candidate-slot scans handed to the in-run probe
	// pool and the slots they evaluated concurrently.
	PrunedRuns   int `json:"pruned_runs"`
	PrunedTasks  int `json:"pruned_tasks"`
	ProbeFanouts int `json:"probe_fanouts"`
	ProbeSlots   int `json:"probe_slots"`
}

func snapshot(m locmps.RunMetrics) *SearchSnapshot {
	return &SearchSnapshot{
		OuterIterations:  m.OuterIterations,
		LookAheadSteps:   m.LookAheadSteps,
		LoCBSRuns:        m.LoCBSRuns,
		CacheHits:        m.CacheHits,
		CacheMisses:      m.CacheMisses,
		CacheHitRate:     m.CacheHitRate(),
		WindowRuns:       m.WindowRuns,
		SpeculativeRuns:  m.SpeculativeRuns,
		SpeculativeWaste: m.SpeculativeWaste,
		ResumedRuns:      m.ResumedRuns,
		ReplayedTasks:    m.ReplayedTasks,
		RollbackDepth:    m.RollbackDepth,
		ReplayRate:       m.ReplayRate(),
		PrunedRuns:       m.PrunedRuns,
		PrunedTasks:      m.PrunedTasks,
		ProbeFanouts:     m.ProbeFanouts,
		ProbeSlots:       m.ProbeSlots,
	}
}

// File is the on-disk layout of BENCH_locmps.json.
type File struct {
	Note string `json:"note,omitempty"`
	// CPUs is the logical core count of the host that recorded the current
	// snapshot. The workers-pinned parallel variant only shows real speedup
	// when measured with at least that many cores, so readers (and the
	// gate) need to know what the figures were taken on.
	CPUs     int                `json:"cpus,omitempty"`
	Baseline map[string]Result  `json:"baseline"`
	Current  map[string]Result  `json:"current"`
	SpeedupX map[string]Speedup `json:"speedup_vs_baseline"`
	// AnytimeTradeoff is the makespan-vs-latency curve of the anytime
	// search on each recorded case: one point per MaxIterations budget
	// (0 = unbounded), refreshed every run like "current".
	AnytimeTradeoff map[string][]TradeoffPoint `json:"anytime_tradeoff,omitempty"`
	// Portfolio holds the engine-portfolio cases: per-engine makespans on a
	// stress-shaped instance, their minimum, and the race's committed
	// result. Refreshed every run; -gate re-races each case and fails if
	// the portfolio exceeds the per-engine minimum or the winner drifts.
	Portfolio map[string]PortfolioEntry `json:"portfolio,omitempty"`
}

// PortfolioEntry is one portfolio bench case. The race has no deadline, so
// everything here is a deterministic function of the instance: the winner
// is the minimum-makespan engine with ties broken by the fixed portfolio
// order, and PortfolioMakespan == MinMakespan always (gated).
type PortfolioEntry struct {
	// EngineMakespans maps each raced engine to its schedule's makespan.
	EngineMakespans map[string]float64 `json:"engine_makespans"`
	// MinMakespan is the minimum over EngineMakespans.
	MinMakespan float64 `json:"min_makespan"`
	// PortfolioMakespan is the race winner's makespan.
	PortfolioMakespan float64 `json:"portfolio_makespan"`
	// Winner is the winning engine's registry name.
	Winner string `json:"winner"`
	// RaceNs is the wall-clock time of the whole race.
	RaceNs float64 `json:"race_ns"`
}

// TradeoffPoint is one budget point of the anytime makespan-vs-latency
// curve: what schedule quality a MaxIterations budget buys and what it
// costs in scheduling time.
type TradeoffPoint struct {
	// MaxIterations is the outer-round budget; 0 means unbounded (the
	// full search, Truncated always false).
	MaxIterations int     `json:"max_iterations"`
	Ns            float64 `json:"ns"`
	Makespan      float64 `json:"makespan"`
	// QualityRatio is makespan over the instance's certified lower bound
	// (>= 1; smaller is better).
	QualityRatio float64 `json:"quality_ratio"`
	Truncated    bool    `json:"truncated"`
}

// tradeoffBudgets are the MaxIterations points of the anytime curve, in
// measurement order; 0 (unbounded) last so the curve ends at the full
// search.
var tradeoffBudgets = []int{4, 16, 64, 256, 0}

// Speedup is baseline/current for the two tracked dimensions.
type Speedup struct {
	Ns     float64 `json:"ns"`
	Allocs float64 `json:"allocs"`
}

type benchCase struct {
	name         string
	tasks, procs int
	// workers pins both intra-search pools via NewLoCMPSParallel; 0 keeps
	// the NewLoCMPS default sizing (GOMAXPROCS).
	workers int
}

var cases = []benchCase{
	{name: "BenchmarkLoCMPS30Tasks16Procs", tasks: 30, procs: 16},
	{name: "BenchmarkLoCMPS50Tasks64Procs", tasks: 50, procs: 64},
	{name: "BenchmarkLoCMPS100Tasks128Procs", tasks: 100, procs: 128},
	{name: "BenchmarkLoCMPS100Tasks128ProcsWorkers4", tasks: 100, procs: 128, workers: 4},
}

// parallelGate ties the workers-pinned variant of the large case to its
// serial twin: the -gate run checks the two schedules are bit-identical,
// that the parallel run actually pruned speculative work, and — on hosts
// with at least parallelGateMinCPUs cores — that the parallel variant meets
// an absolute ns/op floor relative to the serial one. On smaller hosts the
// floor is skipped (a probe pool cannot beat the serial scan without cores
// to run on) but the determinism and pruning checks always apply.
var parallelGate = struct {
	serial, parallel string
	minSpeedup       float64
	minCPUs          int
}{
	serial:     "BenchmarkLoCMPS100Tasks128Procs",
	parallel:   "BenchmarkLoCMPS100Tasks128ProcsWorkers4",
	minSpeedup: 1.5,
	minCPUs:    4,
}

// portfolioCases are the stress-shaped instances the engine portfolio is
// raced on — the cmd/stress topologies where different engines win
// (communication-heavy chains favor DATA, wide fork-joins favor TASK /
// M-HEFT, irregular DAGs favor the LoC-MPS family).
type portfolioCase struct {
	name  string
	shape string // irregular, chain, forkjoin, sp
	tasks int
	procs int
	ccr   float64
	seed  int64
}

var pfCases = []portfolioCase{
	{"PortfolioIrregular30Tasks16Procs", "irregular", 30, 16, 0.25, 7},
	{"PortfolioChain20Tasks8Procs", "chain", 20, 8, 1.0, 7},
	{"PortfolioForkJoin30Tasks16Procs", "forkjoin", 30, 16, 0.25, 7},
	{"PortfolioSP30Tasks16Procs", "sp", 30, 16, 0.25, 7},
}

// buildPortfolioInstance realizes one portfolio case's task graph and
// cluster.
func buildPortfolioInstance(pc portfolioCase) (*locmps.TaskGraph, locmps.Cluster, error) {
	p := locmps.DefaultSynthParams()
	p.Tasks = pc.tasks
	p.CCR = pc.ccr
	p.Seed = pc.seed
	var (
		tg  *locmps.TaskGraph
		err error
	)
	switch pc.shape {
	case "irregular":
		tg, err = locmps.Synthetic(p)
	case "chain":
		tg, err = locmps.SyntheticChain(p)
	case "forkjoin":
		tg, err = locmps.SyntheticForkJoin(p)
	case "sp":
		tg, err = locmps.SyntheticSeriesParallel(p)
	default:
		return nil, locmps.Cluster{}, fmt.Errorf("unknown portfolio shape %q", pc.shape)
	}
	if err != nil {
		return nil, locmps.Cluster{}, err
	}
	return tg, locmps.Cluster{P: pc.procs, Bandwidth: 12.5e6, Overlap: true}, nil
}

// measurePortfolio races the default portfolio on one case (no deadline,
// fully deterministic) and checks the selection invariants at measurement
// time: the portfolio result equals the per-engine minimum, and the winner
// is the argmin with ties broken by portfolio order.
func measurePortfolio(pc portfolioCase) (PortfolioEntry, error) {
	tg, c, err := buildPortfolioInstance(pc)
	if err != nil {
		return PortfolioEntry{}, err
	}
	res, err := locmps.RacePortfolio(context.Background(), tg, c, locmps.PortfolioOptions{})
	if err != nil {
		return PortfolioEntry{}, err
	}
	e := PortfolioEntry{
		EngineMakespans:   make(map[string]float64, len(res.Candidates)),
		PortfolioMakespan: res.Schedule.Makespan,
		Winner:            res.Winner,
		RaceNs:            float64(res.Elapsed),
	}
	argmin := ""
	for _, cand := range res.Candidates {
		if cand.Err != nil {
			return PortfolioEntry{}, fmt.Errorf("engine %s: %w", cand.Engine, cand.Err)
		}
		mk := cand.Schedule.Makespan
		e.EngineMakespans[cand.Engine] = mk
		if argmin == "" || mk < e.MinMakespan {
			argmin, e.MinMakespan = cand.Engine, mk
		}
	}
	if e.PortfolioMakespan != e.MinMakespan {
		return PortfolioEntry{}, fmt.Errorf("portfolio makespan %.6g != per-engine minimum %.6g",
			e.PortfolioMakespan, e.MinMakespan)
	}
	if e.Winner != argmin {
		return PortfolioEntry{}, fmt.Errorf("winner %s is not the argmin %s", e.Winner, argmin)
	}
	return e, nil
}

func main() {
	path := flag.String("o", "BENCH_locmps.json", "output file (baseline inside is preserved)")
	rebase := flag.String("rebaseline", "", "comma-separated case names whose baseline is re-measured with the reference scheduler (memo/resume/speculation off)")
	reps := flag.Int("reps", 3, "benchmark repetitions per case; the fastest is recorded")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the runs to this file")
	gate := flag.Bool("gate", false, "regression gate: re-measure every case and fail if ns/op exceeds the committed current snapshot by more than -gate-threshold, or if any makespan changed; re-races the portfolio cases and fails if the winner or makespan drifts; also audits the committed BENCH_serve.json (current vs its baseline plus the absolute warm_overhead_x bound, no re-measurement); writes no file")
	gateThreshold := flag.Float64("gate-threshold", 1.6, "allowed ns/op ratio over the committed snapshot before -gate fails")
	ablate := flag.Bool("ablate", false, "ablation table: re-run every non-pinned case under serial / probe-only / window-no-pruning / window+pruning configurations, print per-config ns/op and search stats, and fail unless all four schedules are bit-identical; writes no file")
	flag.Parse()
	if *reps < 1 {
		fmt.Fprintln(os.Stderr, "benchjson: -reps must be at least 1")
		os.Exit(1)
	}
	work := func() error { return run(*path, *rebase, *reps) }
	switch {
	case *gate:
		work = func() error { return gateRun(*path, *reps, *gateThreshold) }
	case *ablate:
		work = func() error { return ablateRun(*reps) }
	}
	if err := profiled(*cpuprofile, *memprofile, work); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// gateRun is the CI regression gate: it re-measures every case against the
// committed BENCH_locmps.json and fails when timing regresses past the
// threshold or when any makespan differs from the committed one (schedules
// are deterministic — a changed makespan is a behavior change, not noise).
func gateRun(path string, reps int, threshold float64) error {
	prev, err := load(path)
	if err != nil {
		return err
	}
	if prev == nil || len(prev.Current) == 0 {
		return fmt.Errorf("-gate: no committed snapshot in %s to gate against", path)
	}
	var failures []string
	measured := map[string]Result{}
	for _, cs := range cases {
		committed, ok := prev.Current[cs.name]
		if !ok {
			fmt.Printf("%-34s not in committed snapshot; skipped\n", cs.name)
			continue
		}
		r, err := measure(cs, reps, false)
		if err != nil {
			return fmt.Errorf("%s: %w", cs.name, err)
		}
		measured[cs.name] = r
		ratio := r.NsPerOp / committed.NsPerOp
		status := "ok"
		if r.Makespan != committed.Makespan {
			status = "FAIL (makespan changed)"
			failures = append(failures, fmt.Sprintf("%s: makespan %.6g, committed %.6g — schedule changed",
				cs.name, r.Makespan, committed.Makespan))
		} else if ratio > threshold {
			status = "FAIL (slower)"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op is %.2fx the committed %.0f ns/op (threshold %.2fx)",
				cs.name, r.NsPerOp, ratio, committed.NsPerOp, threshold))
		}
		fmt.Printf("%-34s %14.0f ns/op  %5.2fx committed  %s\n", cs.name, r.NsPerOp, ratio, status)
	}
	failures = append(failures, gateParallel(measured)...)
	// Portfolio cases re-race (deterministic: no deadline) and must
	// reproduce the committed entry exactly — makespans and winner — and
	// respect the selection invariant (portfolio == per-engine minimum,
	// checked inside measurePortfolio).
	for _, pc := range pfCases {
		committed, ok := prev.Portfolio[pc.name]
		if !ok {
			fmt.Printf("%-34s not in committed snapshot; skipped\n", pc.name)
			continue
		}
		e, err := measurePortfolio(pc)
		if err != nil {
			return fmt.Errorf("%s: %w", pc.name, err)
		}
		status := "ok"
		if e.PortfolioMakespan != committed.PortfolioMakespan || e.Winner != committed.Winner {
			status = "FAIL (portfolio changed)"
			failures = append(failures, fmt.Sprintf("%s: portfolio %.6g/%s, committed %.6g/%s — race outcome changed",
				pc.name, e.PortfolioMakespan, e.Winner, committed.PortfolioMakespan, committed.Winner))
		}
		fmt.Printf("%-34s portfolio %.6g (winner %s)  %s\n", pc.name, e.PortfolioMakespan, e.Winner, status)
	}
	serveFailures, err := gateServe("BENCH_serve.json", threshold)
	if err != nil {
		return err
	}
	failures = append(failures, serveFailures...)
	streamFailures, err := gateStream("BENCH_stream.json", threshold)
	if err != nil {
		return err
	}
	failures = append(failures, streamFailures...)
	if len(failures) > 0 {
		return fmt.Errorf("gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("bench gate passed")
	return nil
}

// gateParallel checks the freshly measured serial/parallel pair of the
// large case: identical makespans (the probe pool and the pruning bound
// must never change what is scheduled), at least one pruned speculative
// run (the dominance bound must actually fire on this instance), and — on
// hosts with enough cores — the parallel-vs-serial ns/op floor.
func gateParallel(measured map[string]Result) []string {
	serial, okS := measured[parallelGate.serial]
	parallel, okP := measured[parallelGate.parallel]
	if !okS || !okP {
		return nil // one of the pair was not in the committed snapshot
	}
	var failures []string
	if serial.Makespan != parallel.Makespan {
		failures = append(failures, fmt.Sprintf("%s: makespan %.6g differs from serial %.6g — probe pool or pruning changed the schedule",
			parallelGate.parallel, parallel.Makespan, serial.Makespan))
	}
	if s := parallel.Search; s == nil || s.PrunedRuns == 0 {
		failures = append(failures, fmt.Sprintf("%s: no speculative runs pruned — the dominance bound never fired",
			parallelGate.parallel))
	}
	if runtime.NumCPU() >= parallelGate.minCPUs {
		if speedup := serial.NsPerOp / parallel.NsPerOp; speedup < parallelGate.minSpeedup {
			failures = append(failures, fmt.Sprintf("%s: %.2fx vs serial is below the %.1fx floor on a %d-CPU host",
				parallelGate.parallel, speedup, parallelGate.minSpeedup, runtime.NumCPU()))
		} else {
			fmt.Printf("%-34s parallel floor ok: %.2fx vs serial (floor %.1fx)\n",
				parallelGate.parallel, speedup, parallelGate.minSpeedup)
		}
	} else {
		fmt.Printf("%-34s parallel floor skipped: %d CPUs < %d (determinism and pruning still gated)\n",
			parallelGate.parallel, runtime.NumCPU(), parallelGate.minCPUs)
	}
	return failures
}

// ablateRun isolates what each intra-search mechanism contributes on the
// non-pinned benchmark cases. Four configurations per case:
//
//	serial          SpeculativeWorkers=1, ProbeWorkers=1 — window and probe pool off
//	probe-only      SpeculativeWorkers=1, ProbeWorkers=4 — candidate scans fan out, no window
//	window          SpeculativeWorkers=4, ProbeWorkers=4, pruning disabled
//	window+pruning  SpeculativeWorkers=4, ProbeWorkers=4 — the NewLoCMPSParallel(4) default
//
// All four must produce bit-identical makespans (parallelism and pruning
// are wall-clock-only mechanisms), so the run doubles as a determinism
// sweep. Wall-clock deltas are only meaningful at GOMAXPROCS >= 4; the
// search-stats columns (fanouts, pruned runs) are machine-independent and
// show the mechanisms firing even on a serial host.
func ablateRun(reps int) error {
	configs := []struct {
		label string
		mk    func() *core.LoCMPS
	}{
		{"serial", func() *core.LoCMPS { return core.NewParallel(1) }},
		{"probe-only", func() *core.LoCMPS { lm := core.NewParallel(1); lm.ProbeWorkers = 4; return lm }},
		{"window", func() *core.LoCMPS { lm := core.NewParallel(4); lm.DisablePruning = true; return lm }},
		{"window+pruning", func() *core.LoCMPS { return core.NewParallel(4) }},
	}
	fmt.Printf("ablation at GOMAXPROCS=%d (wall clock meaningful at >= 4; stats columns machine-independent)\n",
		runtime.GOMAXPROCS(0))
	var failures []string
	for _, cs := range cases {
		if cs.workers > 0 {
			continue // the pinned variant is already one of the configs below
		}
		p := locmps.DefaultSynthParams()
		p.Tasks = cs.tasks
		p.CCR = 0.1
		p.Seed = 7
		tg, err := locmps.Synthetic(p)
		if err != nil {
			return err
		}
		c := locmps.Cluster{P: cs.procs, Bandwidth: 12.5e6, Overlap: true}
		var serialMakespan float64
		for ci, cfg := range configs {
			alg := cfg.mk()
			s, err := alg.Schedule(tg, c)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", cs.name, cfg.label, err)
			}
			m, _ := locmps.SearchMetrics(alg)
			var best testing.BenchmarkResult
			for rep := 0; rep < reps; rep++ {
				var benchErr error
				r := testing.Benchmark(func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := cfg.mk().Schedule(tg, c); err != nil {
							benchErr = err
							b.FailNow()
						}
					}
				})
				if benchErr != nil {
					return benchErr
				}
				if rep == 0 || r.NsPerOp() < best.NsPerOp() {
					best = r
				}
			}
			if ci == 0 {
				serialMakespan = s.Makespan
			} else if s.Makespan != serialMakespan {
				failures = append(failures, fmt.Sprintf("%s/%s: makespan %.9g != serial %.9g",
					cs.name, cfg.label, s.Makespan, serialMakespan))
			}
			fmt.Printf("%-32s %-15s %12d ns/op  makespan %.4f  locbs %d  window %d  pruned %d/%d  probe %d/%d\n",
				cs.name, cfg.label, best.NsPerOp(), s.Makespan,
				m.LoCBSRuns, m.WindowRuns, m.PrunedRuns, m.PrunedTasks, m.ProbeFanouts, m.ProbeSlots)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("ablation determinism failures:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// serveGateMetrics are the per-case figures gated in BENCH_serve.json. The
// serving benchmarks take minutes of wall clock, so unlike the scheduler
// cases the gate does not re-measure: it audits the committed file itself —
// current vs the baseline recorded alongside it — and fails when a commit
// records a regression past the threshold. Tail latency gates upward
// (current may not exceed threshold x baseline), speedups gate downward
// (baseline may not exceed threshold x current).
var serveGateMetrics = []struct {
	field         string
	lowerIsBetter bool
	// nsFloor marks nanosecond metrics subject to serveGateFloorNs: a
	// sub-millisecond latency is one preempted goroutine away from any
	// ratio, so such pairs are exempt.
	nsFloor bool
	// skipTruncated exempts the metric when the case records
	// truncated=true: a deadline that actually cut the search makes the
	// figure a function of how often the host preempted the worker inside
	// the budget — scheduler noise, not a regression. (cmd/loadgen already
	// records the best of several repetitions for these cases; the
	// exemption covers the residual drift.)
	skipTruncated bool
}{
	{field: "warm_p99_ns", lowerIsBetter: true, nsFloor: true},
	{field: "net_warm_p99_ns", lowerIsBetter: true, nsFloor: true},
	{field: "hedged_p99_ns", lowerIsBetter: true, nsFloor: true},
	{field: "hit_speedup_x"},
	{field: "cold_schedules_per_sec"},
	{field: "quality_ratio", lowerIsBetter: true, skipTruncated: true},
}

// serveGateWarmOverheadMax is an absolute bound, not a baseline ratio: the
// portfolio case's winner-routed warm p50 may cost at most 10% over the
// direct single-engine call, whatever the baseline recorded.
const serveGateWarmOverheadMax = 1.10

// serveGateFloorNs exempts sub-millisecond latency figures from the serve
// gate: a p99 that small is one preempted goroutine away from any ratio,
// so gating it would only gate the host's scheduler.
const serveGateFloorNs = 1e6

// gateServe audits the committed serving-benchmark file. A missing file is
// fine (the serving suite may not have run on this checkout); a malformed
// one is not. Returns gate failure messages; stale baselines only warn.
func gateServe(path string, threshold float64) ([]string, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		fmt.Printf("%-34s missing; serve gate skipped\n", path)
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var f struct {
		Baseline map[string]map[string]json.RawMessage `json:"baseline"`
		Current  map[string]map[string]json.RawMessage `json:"current"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	names := make([]string, 0, len(f.Current))
	for name := range f.Current {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		cur := f.Current[name]
		// The warm-overhead bound is absolute — it gates current alone, so
		// it applies even to cases with no baseline yet.
		status := "ok"
		if ox, ok := rawFloat(cur["warm_overhead_x"]); ok && ox > serveGateWarmOverheadMax {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %s warm_overhead_x %.3f exceeds the absolute bound %.2f",
				path, name, ox, serveGateWarmOverheadMax))
		}
		base, ok := f.Baseline[name]
		if !ok {
			fmt.Printf("%-34s not in %s baseline; %s (absolute checks only)\n", name, path, status)
			continue
		}
		truncated := false
		if raw, ok := cur["truncated"]; ok {
			_ = json.Unmarshal(raw, &truncated)
		}
		for _, m := range serveGateMetrics {
			if m.skipTruncated && truncated {
				continue
			}
			b, okB := rawFloat(base[m.field])
			c, okC := rawFloat(cur[m.field])
			if !okB || !okC || b <= 0 || c <= 0 {
				continue
			}
			if m.nsFloor && b < serveGateFloorNs && c < serveGateFloorNs {
				continue
			}
			ratio := c / b
			if !m.lowerIsBetter {
				ratio = b / c
			}
			if ratio > threshold {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s: %s %s %.4g vs baseline %.4g is %.2fx worse (threshold %.2fx)",
					path, name, m.field, c, b, ratio, threshold))
			}
		}
		fmt.Printf("%-34s serve gate %s\n", name, status)
	}
	warnStaleRaw(path)
	return failures, nil
}

// streamGateSpeedupMin is the absolute floor on the streaming steady
// case's incremental-vs-scratch speedup: the rolling-horizon reuse
// machinery must beat full scratch rescheduling at least 2x (at
// bit-identical end states — cmd/streamgen refuses to record a speedup
// otherwise).
const streamGateSpeedupMin = 2.0

// streamGateMetrics are the per-case figures gated against the baseline
// in BENCH_stream.json, same conventions as serveGateMetrics: the gate
// audits the committed file rather than re-replaying (a full replay
// costs tens of seconds), latency gates upward, rates gate downward.
var streamGateMetrics = []struct {
	field         string
	lowerIsBetter bool
	nsFloor       bool
}{
	{field: "resched_p50_ns", lowerIsBetter: true, nsFloor: true},
	{field: "resched_p99_ns", lowerIsBetter: true, nsFloor: true},
	{field: "incremental_search_ns", lowerIsBetter: true},
	{field: "replay_rate_eps"},
}

// streamGateRequired names the invariant flags each streaming case must
// carry: cmd/streamgen only writes them true, so an absent or false flag
// means the committed file was edited or produced by a broken run.
var streamGateRequired = map[string]string{
	"StreamSteadyPoisson": "end_bit_identical",
	"StreamT0Batch":       "t0_match",
	"StreamChurnFailures": "audit_clean",
}

// gateStream audits the committed streaming-benchmark file. A missing
// file is fine (the streaming suite may not have run on this checkout);
// a malformed one is not. Returns gate failure messages; stale baselines
// only warn.
func gateStream(path string, threshold float64) ([]string, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		fmt.Printf("%-34s missing; stream gate skipped\n", path)
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var f struct {
		Baseline map[string]map[string]json.RawMessage `json:"baseline"`
		Current  map[string]map[string]json.RawMessage `json:"current"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	names := make([]string, 0, len(f.Current))
	for name := range f.Current {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		cur := f.Current[name]
		status := "ok"
		// Absolute checks first — they gate current alone, baseline or not.
		if flag, ok := streamGateRequired[name]; ok && !rawBool(cur[flag]) {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %s %s is not true — invariant broken or file edited",
				path, name, flag))
		}
		if sx, ok := rawFloat(cur["speedup_x"]); ok && sx < streamGateSpeedupMin {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %s speedup_x %.2f below the absolute floor %.1fx",
				path, name, sx, streamGateSpeedupMin))
		}
		if p50, ok := rawFloat(cur["resched_p50_ns"]); ok {
			if p99, ok := rawFloat(cur["resched_p99_ns"]); ok && p50 > p99 {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s: %s resched_p50_ns %.4g exceeds resched_p99_ns %.4g",
					path, name, p50, p99))
			}
		}
		base, ok := f.Baseline[name]
		if !ok {
			fmt.Printf("%-34s not in %s baseline; %s (absolute checks only)\n", name, path, status)
			continue
		}
		for _, m := range streamGateMetrics {
			b, okB := rawFloat(base[m.field])
			c, okC := rawFloat(cur[m.field])
			if !okB || !okC || b <= 0 || c <= 0 {
				continue
			}
			if m.nsFloor && b < serveGateFloorNs && c < serveGateFloorNs {
				continue
			}
			ratio := c / b
			if !m.lowerIsBetter {
				ratio = b / c
			}
			if ratio > threshold {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s: %s %s %.4g vs baseline %.4g is %.2fx worse (threshold %.2fx)",
					path, name, m.field, c, b, ratio, threshold))
			}
		}
		fmt.Printf("%-34s stream gate %s\n", name, status)
	}
	warnStaleRaw(path)
	return failures, nil
}

// rawBool decodes a raw JSON value as a bool; non-bools and absent
// fields report false.
func rawBool(raw json.RawMessage) bool {
	if raw == nil {
		return false
	}
	var v bool
	if err := json.Unmarshal(raw, &v); err != nil {
		return false
	}
	return v
}

// rawFloat decodes a raw JSON value as a number; non-numbers (bools,
// strings, absent fields) report false.
func rawFloat(raw json.RawMessage) (float64, bool) {
	if raw == nil {
		return 0, false
	}
	var v float64
	if err := json.Unmarshal(raw, &v); err != nil {
		return 0, false
	}
	return v, true
}

// profiled wraps fn with optional CPU and heap profiling; the heap profile
// is taken after a GC so it reflects live retention.
func profiled(cpuPath, memPath string, fn func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := fn(); err != nil {
		return err
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

func run(path, rebase string, reps int) error {
	out := File{
		Note:     "Mid-scale LoC-MPS scheduler benchmarks (synthetic graphs, CCR=0.1, seed 7). Baseline is preserved across runs; delete this file to re-baseline, or re-measure single cases with -rebaseline (reference scheduler: memo/resume/speculation off). Each figure is the fastest of -reps repetitions.",
		CPUs:     runtime.NumCPU(),
		Current:  map[string]Result{},
		SpeedupX: map[string]Speedup{},
	}
	if prev, err := load(path); err != nil {
		return err
	} else if prev != nil && len(prev.Baseline) > 0 {
		out.Baseline = prev.Baseline
		if prev.Note != "" {
			out.Note = prev.Note
		}
	}

	for _, name := range splitNames(rebase) {
		cs, ok := caseByName(name)
		if !ok {
			return fmt.Errorf("-rebaseline: unknown case %q", name)
		}
		if out.Baseline == nil {
			out.Baseline = map[string]Result{}
		}
		r, err := measure(cs, reps, true)
		if err != nil {
			return fmt.Errorf("%s (rebaseline): %w", cs.name, err)
		}
		out.Baseline[cs.name] = r
		fmt.Printf("%-34s baseline re-measured with reference scheduler: %.0f ns/op\n", cs.name, r.NsPerOp)
	}

	for _, cs := range cases {
		r, err := measure(cs, reps, false)
		if err != nil {
			return fmt.Errorf("%s: %w", cs.name, err)
		}
		out.Current[cs.name] = r
		fmt.Printf("%-34s %14.0f ns/op %12.0f B/op %10.0f allocs/op  makespan %.6g (%.3fx CPR)\n",
			cs.name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.Makespan, r.RatioVsCPR)
		if s := r.Search; s != nil {
			fmt.Printf("%-34s %14d locbs %12d hits %10d misses  %.1f%% hit rate, window %d, spec %d/%d wasted\n",
				"", s.LoCBSRuns, s.CacheHits, s.CacheMisses, 100*s.CacheHitRate,
				s.WindowRuns, s.SpeculativeWaste, s.SpeculativeRuns)
			if s.ResumedRuns > 0 {
				fmt.Printf("%-34s %14d resumed %10d replayed %8d rolled back  %.1f%% replay\n",
					"", s.ResumedRuns, s.ReplayedTasks, s.RollbackDepth, 100*s.ReplayRate)
			}
			if s.PrunedRuns > 0 || s.ProbeFanouts > 0 {
				fmt.Printf("%-34s %14d pruned  %10d tasks skipped %6d fanouts (%d slots)\n",
					"", s.PrunedRuns, s.PrunedTasks, s.ProbeFanouts, s.ProbeSlots)
			}
		}
	}
	// The anytime curve is recorded for the largest case only: small
	// instances finish in a handful of rounds, so most budget points
	// coincide with the full search and carry no information.
	{
		cs := cases[len(cases)-1]
		curve, err := tradeoffCurve(cs)
		if err != nil {
			return fmt.Errorf("%s (anytime): %w", cs.name, err)
		}
		out.AnytimeTradeoff = map[string][]TradeoffPoint{cs.name: curve}
		for _, pt := range curve {
			budget := fmt.Sprintf("iters=%d", pt.MaxIterations)
			if pt.MaxIterations == 0 {
				budget = "unbounded"
			}
			fmt.Printf("%-34s anytime %-10s %12.0f ns  makespan %.6g  quality %.3fx bound  truncated=%v\n",
				cs.name, budget, pt.Ns, pt.Makespan, pt.QualityRatio, pt.Truncated)
		}
	}
	out.Portfolio = map[string]PortfolioEntry{}
	for _, pc := range pfCases {
		e, err := measurePortfolio(pc)
		if err != nil {
			return fmt.Errorf("%s: %w", pc.name, err)
		}
		out.Portfolio[pc.name] = e
		fmt.Printf("%-34s portfolio %.6g = min over %d engines (winner %s, race %v)\n",
			pc.name, e.PortfolioMakespan, len(e.EngineMakespans), e.Winner, time.Duration(e.RaceNs))
	}
	if out.Baseline == nil {
		out.Baseline = out.Current
		fmt.Println("no existing baseline: current run recorded as baseline")
	} else {
		// Cases added after the baseline was first recorded start their
		// trajectory at this run.
		for name, cur := range out.Current {
			if _, ok := out.Baseline[name]; !ok {
				out.Baseline[name] = cur
				fmt.Printf("%-34s new case: current run backfilled into baseline\n", name)
			}
		}
	}
	for name, cur := range out.Current {
		if base, ok := out.Baseline[name]; ok && cur.NsPerOp > 0 && cur.AllocsPerOp > 0 {
			out.SpeedupX[name] = Speedup{
				Ns:     base.NsPerOp / cur.NsPerOp,
				Allocs: base.AllocsPerOp / cur.AllocsPerOp,
			}
			fmt.Printf("%-34s %6.2fx ns/op %6.2fx allocs/op vs baseline\n",
				name, out.SpeedupX[name].Ns, out.SpeedupX[name].Allocs)
		}
	}
	warnStale(&out)
	warnStaleRaw("BENCH_serve.json")
	warnStaleRaw("BENCH_stream.json")

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// tradeoffCurve measures the anytime makespan-vs-latency curve on one
// case: the schedule each MaxIterations budget buys (deterministic — no
// wall clock in the stop rule) and the wall time it cost. Monotonicity of
// the quality ratio across growing budgets is asserted by the core tests;
// here the points are only recorded.
func tradeoffCurve(cs benchCase) ([]TradeoffPoint, error) {
	p := locmps.DefaultSynthParams()
	p.Tasks = cs.tasks
	p.CCR = 0.1
	p.Seed = 7
	tg, err := locmps.Synthetic(p)
	if err != nil {
		return nil, err
	}
	c := locmps.Cluster{P: cs.procs, Bandwidth: 12.5e6, Overlap: true}
	ctx := context.Background()
	curve := make([]TradeoffPoint, 0, len(tradeoffBudgets))
	for _, iters := range tradeoffBudgets {
		t0 := time.Now()
		res, err := locmps.ScheduleAnytime(ctx, tg, c, locmps.Budget{MaxIterations: iters})
		if err != nil {
			return nil, err
		}
		curve = append(curve, TradeoffPoint{
			MaxIterations: iters,
			Ns:            float64(time.Since(t0)),
			Makespan:      res.Schedule.Makespan,
			QualityRatio:  res.Ratio,
			Truncated:     res.Truncated,
		})
	}
	return curve, nil
}

// warnStale flags every case whose baseline and current snapshots are
// byte-identical: the 1.0x speedup such a pair produces is the fingerprint
// of a backfilled (never re-measured) baseline, not a measurement.
func warnStale(f *File) {
	for name, cur := range f.Current {
		base, ok := f.Baseline[name]
		if !ok {
			continue
		}
		bj, err1 := json.Marshal(base)
		cj, err2 := json.Marshal(cur)
		if err1 == nil && err2 == nil && bytes.Equal(bj, cj) {
			fmt.Fprintf(os.Stderr,
				"benchjson: warning: %s baseline == current byte-for-byte (stale backfill, speedup vacuously 1.0x); re-measure it with -rebaseline %s\n",
				name, name)
		}
	}
}

// warnStaleRaw applies the same stale-baseline check to a sibling benchmark
// file this tool does not write (currently BENCH_serve.json, produced by
// cmd/loadgen): any case whose baseline and current raw JSON are
// byte-identical is flagged. The file's schema doesn't matter — only the
// baseline/current maps are compared — and a missing file is fine.
func warnStaleRaw(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	var f struct {
		Baseline map[string]json.RawMessage `json:"baseline"`
		Current  map[string]json.RawMessage `json:"current"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: warning: %s is not valid JSON: %v\n", path, err)
		return
	}
	for name, cur := range f.Current {
		if base, ok := f.Baseline[name]; ok && bytes.Equal(base, cur) {
			fmt.Fprintf(os.Stderr,
				"benchjson: warning: %s: %s baseline == current byte-for-byte (stale backfill); delete the file to re-baseline\n",
				path, name)
		}
	}
}

func splitNames(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func caseByName(name string) (benchCase, bool) {
	for _, cs := range cases {
		if cs.name == name {
			return cs, true
		}
	}
	return benchCase{}, false
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("existing %s is not valid: %w", path, err)
	}
	return &f, nil
}

// measure builds the same instance as the bench_test.go benchmark of the
// same name and times the scheduler on it: the optimized LoC-MPS, or (for
// re-baselining) the reference configuration with its cross-run
// accelerations off. Timing repeats reps times and the fastest repetition
// is recorded, which suppresses scheduler jitter the same way benchstat's
// min column does.
func measure(cs benchCase, reps int, reference bool) (Result, error) {
	p := locmps.DefaultSynthParams()
	p.Tasks = cs.tasks
	p.CCR = 0.1
	p.Seed = 7
	tg, err := locmps.Synthetic(p)
	if err != nil {
		return Result{}, err
	}
	c := locmps.Cluster{P: cs.procs, Bandwidth: 12.5e6, Overlap: true}
	newAlg := locmps.NewLoCMPS
	switch {
	case reference:
		newAlg = locmps.NewLoCMPSReference
	case cs.workers > 0:
		newAlg = func() locmps.Scheduler { return locmps.NewLoCMPSParallel(cs.workers) }
	}

	alg := newAlg()
	s, err := alg.Schedule(tg, c)
	if err != nil {
		return Result{}, err
	}
	cpr, err := locmps.NewCPR().Schedule(tg, c)
	if err != nil {
		return Result{}, err
	}

	var best testing.BenchmarkResult
	for rep := 0; rep < reps; rep++ {
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := newAlg().Schedule(tg, c); err != nil {
					benchErr = err
					b.FailNow()
				}
			}
		})
		if benchErr != nil {
			return Result{}, benchErr
		}
		if rep == 0 || r.NsPerOp() < best.NsPerOp() {
			best = r
		}
	}
	res := Result{
		NsPerOp:     float64(best.NsPerOp()),
		BytesPerOp:  float64(best.AllocedBytesPerOp()),
		AllocsPerOp: float64(best.AllocsPerOp()),
		Makespan:    s.Makespan,
		RatioVsCPR:  s.Makespan / cpr.Makespan,
	}
	if m, ok := locmps.SearchMetrics(alg); ok {
		res.Search = snapshot(m)
	}
	return res, nil
}
