// Synthetic sweep: regenerate the shape of the paper's Figures 4-5 at a
// configurable scale — relative performance of every scheduler across CCR
// values and machine sizes on random task graphs.
//
//	go run ./examples/synthetic-sweep [-graphs 5] [-full]
package main

import (
	"flag"
	"fmt"
	"log"

	"locmps"
)

func main() {
	graphs := flag.Int("graphs", 5, "random graphs per data point")
	full := flag.Bool("full", false, "paper-scale sweep (30 graphs, P up to 128; slow)")
	flag.Parse()

	opt := locmps.QuickSuiteOptions()
	opt.Graphs = *graphs
	if *full {
		opt = locmps.PaperSuiteOptions()
	}

	fmt.Println("Figure 4(a): CCR=0, Amax=64 sigma=1")
	f, err := locmps.Fig4('a', opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f.Table())

	fmt.Println("Figure 5(a): CCR=0.1")
	f, err = locmps.Fig5('a', opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f.Table())

	fmt.Println("Figure 5(b): CCR=1")
	f, err = locmps.Fig5('b', opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f.Table())

	fmt.Println("Figure 6: backfill vs no-backfill (CCR=0.1, Amax=48 sigma=2)")
	perf, times, err := locmps.Fig6(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(perf.Table())
	fmt.Println(times.Table())
}
