// Backfill characterization example: the parallel-job scheduling substrate
// that LoCBS borrows from (the paper's reference [12]). Compares FCFS,
// EASY and conservative backfilling on a random rigid-job workload and
// prints the standard metrics.
//
//	go run ./examples/backfill [-jobs 200] [-procs 32] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"locmps/internal/jobsched"
)

func main() {
	n := flag.Int("jobs", 200, "number of jobs")
	procs := flag.Int("procs", 32, "processors")
	seed := flag.Int64("seed", 7, "workload seed")
	exact := flag.Bool("exact", false, "exact runtime estimates instead of over-estimates")
	flag.Parse()

	r := rand.New(rand.NewSource(*seed))
	jobs := make([]jobsched.Job, *n)
	now := 0.0
	for i := range jobs {
		now += r.ExpFloat64() * 3
		run := math.Exp(r.Float64()*5) + 1
		width := 1 << r.Intn(6)
		if width > *procs {
			width = *procs
		}
		est := run
		if !*exact {
			est = run * (1 + 2*r.Float64())
		}
		jobs[i] = jobsched.Job{Arrival: now, Procs: width, Runtime: run, Estimate: est}
	}

	fmt.Printf("%d jobs on P=%d (seed %d, exact estimates: %v)\n\n", *n, *procs, *seed, *exact)
	fmt.Printf("%-6s %10s %10s %12s %12s %10s\n",
		"strat", "makespan", "avg wait", "bnd slowdown", "utilization", "backfilled")
	for _, strat := range []jobsched.Strategy{jobsched.FCFS, jobsched.EASY, jobsched.Conservative} {
		res, err := jobsched.Simulate(jobs, *procs, strat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %10.1f %10.2f %12.2f %11.1f%% %10d\n",
			strat, res.Makespan, res.AvgWait, res.AvgBoundedSlowdown,
			100*res.Utilization, res.Backfilled)
	}
}
