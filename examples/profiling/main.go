// Profiling example: the workflow the paper describes for application
// tasks — measure execution times at a few processor counts, fit Downey's
// model to the measurements, and schedule with the fitted analytic
// profiles. Here the "measurements" come from a hidden ground-truth curve
// plus noise, so the fit quality is checkable.
//
//	go run ./examples/profiling
package main

import (
	"fmt"
	"log"
	"math/rand"

	"locmps"
)

func main() {
	r := rand.New(rand.NewSource(42))

	// Ground truth speedup curves for three "profiled" kernels.
	truth := map[string]locmps.Downey{
		"fft":    {T1: 120, A: 24, Sigma: 0.5},
		"solver": {T1: 300, A: 48, Sigma: 1.0},
		"io":     {T1: 40, A: 2, Sigma: 2.0},
	}

	fitted := map[string]locmps.Downey{}
	for name, d := range truth {
		// "Profile" on 1..16 processors with 5% measurement noise.
		times := make([]float64, 16)
		for p := 1; p <= len(times); p++ {
			times[p-1] = d.Time(p) * (1 + 0.05*(2*r.Float64()-1))
		}
		fit, err := locmps.FitDowney(times)
		if err != nil {
			log.Fatal(err)
		}
		fitted[name] = fit
		fmt.Printf("%-7s truth (A=%4.1f s=%4.2f)  fitted (A=%5.1f s=%4.2f)\n",
			name, d.A, d.Sigma, fit.A, fit.Sigma)
	}

	// Build a small pipeline out of the fitted kernels and schedule it.
	tg, err := locmps.NewTaskGraph(
		[]locmps.Task{
			{Name: "load", Profile: fitted["io"]},
			{Name: "fft1", Profile: fitted["fft"]},
			{Name: "fft2", Profile: fitted["fft"]},
			{Name: "solve", Profile: fitted["solver"]},
			{Name: "store", Profile: fitted["io"]},
		},
		[]locmps.Edge{
			{From: 0, To: 1, Volume: 64e6},
			{From: 0, To: 2, Volume: 64e6},
			{From: 1, To: 3, Volume: 64e6},
			{From: 2, To: 3, Volume: 64e6},
			{From: 3, To: 4, Volume: 64e6},
		})
	if err != nil {
		log.Fatal(err)
	}
	cluster := locmps.Cluster{P: 32, Bandwidth: 250e6, Overlap: true}
	s, err := locmps.NewLoCMPS().Schedule(tg, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(s.Summary(tg))

	st, err := locmps.GraphStatistics(tg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(st)
}
