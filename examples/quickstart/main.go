// Quickstart: build a small mixed-parallel application, schedule it with
// LoC-MPS, and compare against the pure task- and data-parallel baselines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"locmps"
)

func main() {
	// An image-processing style pipeline: decode fans out to two
	// independent transforms whose results are merged. The transforms
	// scale well (Downey A=16); decode/merge are I/O bound and barely
	// scale. Each edge moves a 32 MB frame.
	decodeProf, err := locmps.NewDowney(8, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	transformProf, err := locmps.NewDowney(40, 16, 1)
	if err != nil {
		log.Fatal(err)
	}
	mergeProf, err := locmps.NewDowney(10, 3, 2)
	if err != nil {
		log.Fatal(err)
	}

	const frame = 32e6 // bytes
	tg, err := locmps.NewTaskGraph(
		[]locmps.Task{
			{Name: "decode", Profile: decodeProf},
			{Name: "denoise", Profile: transformProf},
			{Name: "sharpen", Profile: transformProf},
			{Name: "merge", Profile: mergeProf},
		},
		[]locmps.Edge{
			{From: 0, To: 1, Volume: frame},
			{From: 0, To: 2, Volume: frame},
			{From: 1, To: 3, Volume: frame},
			{From: 2, To: 3, Volume: frame},
		})
	if err != nil {
		log.Fatal(err)
	}

	cluster := locmps.Cluster{P: 16, Bandwidth: 250e6, Overlap: true}

	for _, alg := range []locmps.Scheduler{
		locmps.NewLoCMPS(), locmps.NewTaskParallel(), locmps.NewDataParallel(),
	} {
		s, err := alg.Schedule(tg, cluster)
		if err != nil {
			log.Fatalf("%s: %v", alg.Name(), err)
		}
		fmt.Printf("%-8s makespan %7.3f  utilization %5.1f%%  scheduling %v\n",
			alg.Name(), s.Makespan, 100*s.Utilization(tg), s.SchedulingTime)
	}

	// Show the LoC-MPS schedule in detail.
	s, err := locmps.NewLoCMPS().Schedule(tg, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(s.Gantt(tg, 96))

	// And execute it on the simulated cluster with 10% runtime noise.
	res, err := locmps.Execute(tg, s, locmps.SimOptions{Noise: 0.1, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated makespan with noise: %.3f (plan was %.3f)\n", res.Makespan, s.Makespan)
	fmt.Printf("bytes over network: %.3g, bytes reused locally: %.3g\n", res.NetworkBytes, res.LocalBytes)
}
