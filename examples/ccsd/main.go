// CCSD example: the paper's Tensor Contraction Engine workload (Fig 8 and
// Fig 11). Schedules the CCSD-T1 DAG under both system models (with and
// without computation/communication overlap) and then "runs" the schedules
// on the discrete-event cluster simulator with runtime noise, the
// reproduction of the paper's actual-execution experiment.
//
//	go run ./examples/ccsd [-procs 64] [-o 32] [-v 128]
package main

import (
	"flag"
	"fmt"
	"log"

	"locmps"
)

func main() {
	procs := flag.Int("procs", 64, "number of processors")
	o := flag.Int("o", 32, "occupied orbitals")
	v := flag.Int("v", 128, "virtual orbitals")
	noise := flag.Float64("noise", 0.15, "runtime noise for the simulated execution")
	flag.Parse()

	tg, err := locmps.CCSDT1(locmps.CCSDParams{O: *o, V: *v})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CCSD-T1 (O=%d, V=%d): %d contractions\n\n", *o, *v, tg.N())

	for _, overlap := range []bool{true, false} {
		cluster := locmps.Cluster{P: *procs, Bandwidth: locmps.MyrinetBandwidth, Overlap: overlap}
		fmt.Printf("system model: overlap=%v, P=%d\n", overlap, *procs)
		for _, alg := range locmps.AllSchedulers() {
			s, err := alg.Schedule(tg, cluster)
			if err != nil {
				log.Fatalf("%s: %v", alg.Name(), err)
			}
			fmt.Printf("  %-12s planned %9.4f s   sched %v\n", alg.Name(), s.Makespan, s.SchedulingTime)
		}
		fmt.Println()
	}

	// Actual (simulated) execution with noise, overlap model.
	cluster := locmps.Cluster{P: *procs, Bandwidth: locmps.MyrinetBandwidth, Overlap: true}
	fmt.Printf("simulated execution (noise %.0f%%):\n", 100**noise)
	for _, alg := range locmps.AllSchedulers() {
		s, res, err := locmps.Run(alg, tg, cluster, locmps.SimOptions{Noise: *noise, Seed: 2006})
		if err != nil {
			log.Fatalf("%s: %v", alg.Name(), err)
		}
		fmt.Printf("  %-12s executed %9.4f s (planned %9.4f)   network %7.3g B   local %7.3g B\n",
			alg.Name(), res.Makespan, s.Makespan, res.NetworkBytes, res.LocalBytes)
	}
}
