// Online rescheduling example: the paper's future-work direction (§VI)
// built on top of LoC-MPS. A node degrades mid-run; the static plan eats
// the slowdown while the adaptive runtime re-plans the remaining tasks
// around the slow node.
//
//	go run ./examples/online [-procs 8] [-tasks 24] [-factor 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"locmps"
)

func main() {
	procs := flag.Int("procs", 8, "number of processors")
	tasks := flag.Int("tasks", 24, "number of tasks")
	factor := flag.Float64("factor", 8, "slowdown multiplier applied to node 0")
	flag.Parse()

	p := locmps.DefaultSynthParams()
	p.Tasks = *tasks
	p.CCR = 0.1
	p.Seed = 11
	tg, err := locmps.Synthetic(p)
	if err != nil {
		log.Fatal(err)
	}
	c := locmps.Cluster{P: *procs, Bandwidth: p.Bandwidth, Overlap: true}

	ev := []locmps.Slowdown{{Time: 0.1, Node: 0, Factor: *factor}}

	static, err := locmps.ExecuteOnline(locmps.NewLoCMPS(), tg, c, locmps.OnlineOptions{
		Slowdowns: ev,
	})
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := locmps.ExecuteOnline(locmps.NewLoCMPS(), tg, c, locmps.OnlineOptions{
		Slowdowns: ev,
		Policy:    locmps.ReschedulePolicy{DriftThreshold: 0.05, Reallocate: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("planned makespan (healthy cluster):     %8.2f\n", static.PlannedMakespan)
	fmt.Printf("static execution with node 0 at 1/%.0fx: %8.2f\n", *factor, static.Makespan)
	fmt.Printf("adaptive execution (rescheduling):      %8.2f\n", adaptive.Makespan)
	fmt.Printf("reschedules: %d, migrated tasks: %d\n", adaptive.Reschedules, adaptive.Migrated)
	if adaptive.Makespan < static.Makespan {
		fmt.Printf("rescheduling recovered %.1f%% of the slowdown-induced loss\n",
			100*(static.Makespan-adaptive.Makespan)/(static.Makespan-static.PlannedMakespan))
	}
}
