// Strassen example: schedule one level of Strassen's matrix multiplication
// (the paper's Fig 7(b)/Fig 9 workload) with every algorithm, at two matrix
// sizes, and watch the DATA baseline catch up as tasks get more scalable.
//
//	go run ./examples/strassen [-procs 32]
package main

import (
	"flag"
	"fmt"
	"log"

	"locmps"
)

func main() {
	procs := flag.Int("procs", 32, "number of processors")
	flag.Parse()

	for _, n := range []int{1024, 4096} {
		tg, err := locmps.Strassen(n)
		if err != nil {
			log.Fatal(err)
		}
		cluster := locmps.Cluster{P: *procs, Bandwidth: locmps.MyrinetBandwidth, Overlap: true}

		fmt.Printf("Strassen %dx%d on P=%d (%d tasks)\n", n, n, *procs, tg.N())
		var ref float64
		for _, alg := range locmps.AllSchedulers() {
			s, err := alg.Schedule(tg, cluster)
			if err != nil {
				log.Fatalf("%s: %v", alg.Name(), err)
			}
			if ref == 0 {
				ref = s.Makespan
			}
			fmt.Printf("  %-12s makespan %10.4f s   relative %5.2f   sched %v\n",
				alg.Name(), s.Makespan, ref/s.Makespan, s.SchedulingTime)
		}
		fmt.Println()
	}
}
