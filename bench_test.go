package locmps_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§IV), each regenerating the corresponding data series at a
// reduced-but-representative scale, plus micro-benchmarks of the scheduler
// itself. Run the paper-scale versions with cmd/experiments -full.
//
//	go test -bench=. -benchmem

import (
	"strconv"
	"testing"

	"locmps"
)

func benchSuite() locmps.SuiteOptions {
	o := locmps.QuickSuiteOptions()
	o.Graphs = 3
	o.MinTasks, o.MaxTasks = 10, 20
	o.Procs = []int{8, 16}
	return o
}

func benchApps() locmps.AppOptions {
	o := locmps.QuickAppOptions()
	o.Procs = []int{8, 16}
	return o
}

func reportRatios(b *testing.B, f locmps.Figure) {
	b.Helper()
	for _, s := range f.Series {
		if len(s.Points) == 0 {
			b.Fatalf("series %s empty", s.Name)
		}
		last := s.Points[len(s.Points)-1]
		b.ReportMetric(last.Y, s.Name+"@P"+strconv.Itoa(int(last.X)))
	}
}

// benchFigure regenerates one figure per iteration and reports its final-P
// ratios once; every figure benchmark below shares this body.
func benchFigure(b *testing.B, gen func() (locmps.Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		f, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportRatios(b, f)
		}
	}
}

// BenchmarkFig4a: synthetic graphs, CCR=0, Amax=64 sigma=1.
func BenchmarkFig4a(b *testing.B) {
	benchFigure(b, func() (locmps.Figure, error) { return locmps.Fig4('a', benchSuite()) })
}

// BenchmarkFig4b: synthetic graphs, CCR=0, Amax=48 sigma=2.
func BenchmarkFig4b(b *testing.B) {
	benchFigure(b, func() (locmps.Figure, error) { return locmps.Fig4('b', benchSuite()) })
}

// BenchmarkFig5a: synthetic graphs, CCR=0.1.
func BenchmarkFig5a(b *testing.B) {
	benchFigure(b, func() (locmps.Figure, error) { return locmps.Fig5('a', benchSuite()) })
}

// BenchmarkFig5b: synthetic graphs, CCR=1.
func BenchmarkFig5b(b *testing.B) {
	benchFigure(b, func() (locmps.Figure, error) { return locmps.Fig5('b', benchSuite()) })
}

// BenchmarkFig6 compares backfill to no-backfill (schedule quality and
// scheduling time).
func BenchmarkFig6(b *testing.B) {
	benchFigure(b, func() (locmps.Figure, error) {
		perf, _, err := locmps.Fig6(benchSuite())
		return perf, err
	})
}

// BenchmarkFig8Overlap: CCSD-T1 with computation/communication overlap.
func BenchmarkFig8Overlap(b *testing.B) {
	benchFigure(b, func() (locmps.Figure, error) { return locmps.Fig8(true, benchApps()) })
}

// BenchmarkFig8NoOverlap: CCSD-T1 without overlap.
func BenchmarkFig8NoOverlap(b *testing.B) {
	benchFigure(b, func() (locmps.Figure, error) { return locmps.Fig8(false, benchApps()) })
}

// BenchmarkFig9Strassen1024: Strassen 1024x1024.
func BenchmarkFig9Strassen1024(b *testing.B) {
	benchFigure(b, func() (locmps.Figure, error) { return locmps.Fig9(1024, benchApps()) })
}

// BenchmarkFig9Strassen4096: Strassen 4096x4096.
func BenchmarkFig9Strassen4096(b *testing.B) {
	benchFigure(b, func() (locmps.Figure, error) { return locmps.Fig9(4096, benchApps()) })
}

// BenchmarkFig10SchedulingTimes measures the schedulers themselves (CCSD).
func BenchmarkFig10SchedulingTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := locmps.Fig10("ccsd", benchApps()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11ActualExecution: simulated execution of CCSD-T1 with
// runtime noise.
func BenchmarkFig11ActualExecution(b *testing.B) {
	benchFigure(b, func() (locmps.Figure, error) { return locmps.Fig11(benchApps()) })
}

// --- Micro-benchmarks of the core algorithm -------------------------------

func synthGraph(b *testing.B, tasks int, ccr float64) *locmps.TaskGraph {
	b.Helper()
	p := locmps.DefaultSynthParams()
	p.Tasks = tasks
	p.CCR = ccr
	p.Seed = 7
	tg, err := locmps.Synthetic(p)
	if err != nil {
		b.Fatal(err)
	}
	return tg
}

// BenchmarkLoCMPS30Tasks16Procs is the mid-scale scheduling cost.
func BenchmarkLoCMPS30Tasks16Procs(b *testing.B) {
	tg := synthGraph(b, 30, 0.1)
	c := locmps.Cluster{P: 16, Bandwidth: 12.5e6, Overlap: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locmps.NewLoCMPS().Schedule(tg, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoCMPS50Tasks64Procs approaches the paper's largest runs.
func BenchmarkLoCMPS50Tasks64Procs(b *testing.B) {
	tg := synthGraph(b, 50, 0.1)
	c := locmps.Cluster{P: 64, Bandwidth: 12.5e6, Overlap: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locmps.NewLoCMPS().Schedule(tg, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoCMPS100Tasks128Procs stresses the search layer beyond the
// paper's scale: long look-ahead trajectories over many rounds, where the
// allocation-vector memo absorbs most repeat evaluations.
func BenchmarkLoCMPS100Tasks128Procs(b *testing.B) {
	tg := synthGraph(b, 100, 0.1)
	c := locmps.Cluster{P: 128, Bandwidth: 12.5e6, Overlap: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locmps.NewLoCMPS().Schedule(tg, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoCMPS100Tasks128ProcsWorkers4 runs the same cold search with
// the barrier-window pool and the in-run candidate-probe pool both pinned
// to four workers. Schedules are bit-identical to the serial run; only
// wall clock may differ, so comparing against the serial benchmark above
// isolates the intra-search parallel speedup (meaningful at GOMAXPROCS>=4).
func BenchmarkLoCMPS100Tasks128ProcsWorkers4(b *testing.B) {
	tg := synthGraph(b, 100, 0.1)
	c := locmps.Cluster{P: 128, Bandwidth: 12.5e6, Overlap: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locmps.NewLoCMPSParallel(4).Schedule(tg, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPR30Tasks16Procs for comparison with the cheaper baselines.
func BenchmarkCPR30Tasks16Procs(b *testing.B) {
	tg := synthGraph(b, 30, 0.1)
	c := locmps.Cluster{P: 16, Bandwidth: 12.5e6, Overlap: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locmps.NewCPR().Schedule(tg, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPA30Tasks16Procs: the low-cost two-phase baseline.
func BenchmarkCPA30Tasks16Procs(b *testing.B) {
	tg := synthGraph(b, 30, 0.1)
	c := locmps.Cluster{P: 16, Bandwidth: 12.5e6, Overlap: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locmps.NewCPA().Schedule(tg, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateCCSD measures the discrete-event executor.
func BenchmarkSimulateCCSD(b *testing.B) {
	tg, err := locmps.CCSDT1(locmps.CCSDParams{O: 16, V: 64})
	if err != nil {
		b.Fatal(err)
	}
	c := locmps.Cluster{P: 32, Bandwidth: locmps.MyrinetBandwidth, Overlap: true}
	s, err := locmps.NewLoCMPS().Schedule(tg, c)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := locmps.Execute(tg, s, locmps.SimOptions{Noise: 0.1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension benchmarks ---------------------------------------------------

// BenchmarkAblationLookAhead sweeps the look-ahead depth on a small suite
// (the design-choice study of DESIGN.md §7).
func BenchmarkAblationLookAhead(b *testing.B) {
	o := locmps.DefaultAblationOptions()
	o.Suite.Graphs = 2
	o.Suite.MinTasks, o.Suite.MaxTasks = 10, 16
	o.Procs = 8
	for i := 0; i < b.N; i++ {
		perf, _, err := locmps.AblateLookAhead(o, []int{1, 20})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			pts := perf.Series[0].Points
			b.ReportMetric(pts[len(pts)-1].Y, "depth20-vs-1")
		}
	}
}

// BenchmarkOptimalityGap measures LoC-MPS against the branch-and-bound
// optimum on tiny instances.
func BenchmarkOptimalityGap(b *testing.B) {
	p := locmps.DefaultSynthParams()
	p.Tasks = 4
	p.CCR = 0.1
	p.Seed = 12
	tg, err := locmps.Synthetic(p)
	if err != nil {
		b.Fatal(err)
	}
	c := locmps.Cluster{P: 3, Bandwidth: p.Bandwidth, Overlap: true}
	for i := 0; i < b.N; i++ {
		opt, err := locmps.NewOptimal().Schedule(tg, c)
		if err != nil {
			b.Fatal(err)
		}
		loc, err := locmps.NewLoCMPS().Schedule(tg, c)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(loc.Makespan/opt.Makespan, "gap")
		}
	}
}

// BenchmarkOnlineRescheduling measures the adaptive runtime around a node
// slowdown (the future-work extension).
func BenchmarkOnlineRescheduling(b *testing.B) {
	p := locmps.DefaultSynthParams()
	p.Tasks = 20
	p.Seed = 11
	tg, err := locmps.Synthetic(p)
	if err != nil {
		b.Fatal(err)
	}
	c := locmps.Cluster{P: 8, Bandwidth: p.Bandwidth, Overlap: true}
	opt := locmps.OnlineOptions{
		Slowdowns: []locmps.Slowdown{{Time: 0.1, Node: 0, Factor: 8}},
		Policy:    locmps.ReschedulePolicy{DriftThreshold: 0.05, Reallocate: true},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := locmps.ExecuteOnline(locmps.NewLoCMPS(), tg, c, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(tr.Makespan/tr.PlannedMakespan, "slowdown-factor")
		}
	}
}

// BenchmarkBackfillSubstrate measures the rigid-job backfilling substrate.
func BenchmarkBackfillSubstrate(b *testing.B) {
	jobs := make([]locmps.RigidJob, 300)
	now := 0.0
	for i := range jobs {
		now += float64(i%7) * 1.3
		run := 5 + float64(i%23)*3
		jobs[i] = locmps.RigidJob{
			Arrival: now, Procs: 1 << (i % 5), Runtime: run, Estimate: run * 1.5,
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := locmps.SimulateJobs(jobs, 32, locmps.StrategyConservative); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMHEFT measures the extra M-HEFT baseline at mid scale.
func BenchmarkMHEFT(b *testing.B) {
	tg := synthGraph(b, 30, 0.1)
	c := locmps.Cluster{P: 16, Bandwidth: 12.5e6, Overlap: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := locmps.NewMHEFT().Schedule(tg, c); err != nil {
			b.Fatal(err)
		}
	}
}
